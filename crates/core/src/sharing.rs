//! Shared vs. unshared group execution: `x_shared`, `x_unshared`,
//! and the sharing benefit `Z(m, n)` (paper Sections 4.2–4.3, 5.1).

use crate::error::{ModelError, Result};
use crate::plan::{NodeId, PlanSpec};
use serde::{Deserialize, Serialize};

/// Queueing regime for the unshared baseline (paper Section 5.1).
///
/// The distinction only matters when group members have mismatched peak
/// rates; for identical queries both regimes coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SystemKind {
    /// Closed system: every completed query is immediately replaced, so
    /// faster queries raise group throughput. `r_unshared` is the
    /// harmonic mean of peak rates and each query is throttled only by
    /// its own `p_max`. This is the regime the paper targets (data
    /// warehousing under heavy load).
    #[default]
    Closed,
    /// Open system: arrivals are independent of response time; unshared
    /// queries are modeled as if throttled to the rate of the slowest
    /// group member ("the equations all remain unchanged").
    Open,
}

/// Intra-query worker scaling: `k` morsel workers deliver an effective
/// `k^κ`-fold speedup of parallelizable operator work, with `κ`
/// re-fitted from measured throughput of the threaded engine at
/// several worker counts (the same aggregate-bandwidth form as the
/// paper's Section 4.1.4 contention model, applied *within* a query).
///
/// The pivot's per-member output multiplexing `Σ s_mφ` stays serial —
/// in the morsel engine every parallel group funnels through one merge
/// task, exactly the serialization point the paper analyzes — so
/// worker scaling divides `w` terms but never `s` terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerScaling {
    /// Morsel workers per query (`k ≥ 1`).
    pub workers: u32,
    /// Scaling exponent `κ` (`0 < κ ≤ 1`): measured intra-query
    /// speedup is `k^κ`. `κ = 1` is ideal linear scaling; a host whose
    /// throughput is flat in `k` fits `κ → 0`.
    pub kappa: f64,
}

impl WorkerScaling {
    /// Scaling with a measured exponent. Errs unless `workers ≥ 1` and
    /// `0 < κ ≤ 1`.
    pub fn new(workers: u32, kappa: f64) -> Result<Self> {
        if workers == 0 {
            return Err(ModelError::InvalidProcessors(0.0));
        }
        if !(kappa > 0.0 && kappa <= 1.0) {
            return Err(ModelError::InvalidCost {
                what: "worker scaling exponent κ".into(),
                value: kappa,
            });
        }
        Ok(Self { workers, kappa })
    }

    /// Ideal linear scaling (`κ = 1`).
    pub fn ideal(workers: u32) -> Result<Self> {
        Self::new(workers, 1.0)
    }

    /// The serial single-worker baseline (`e = 1` exactly).
    pub fn serial() -> Self {
        Self {
            workers: 1,
            kappa: 1.0,
        }
    }

    /// Effective speedup of parallelizable work: `e(k) = k^κ`.
    pub fn effective(&self) -> f64 {
        (self.workers as f64).powf(self.kappa)
    }
}

/// One member query of a (potential) sharing group, reduced to the three
/// quantities the group equations need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupMember {
    /// `s_mφ`: cost for the pivot to emit one unit of forward progress to
    /// this member.
    pub pivot_output_cost: f64,
    /// `p_k` for every operator of this query above the pivot.
    pub above: Vec<f64>,
    /// `c_m ∈ (0, 1]`: fraction of the shared pivot's output this member
    /// actually needs. Subsumption sharing runs a *wide* pivot; a member
    /// whose own pivot is narrower would, unshared, only pay
    /// `w + c_m · s_mφ` at its private pivot. `1` (exact overlap)
    /// reproduces the paper's equations unchanged.
    pub coverage: f64,
    /// `r_m`: per-unit-progress cost of the residual filter this member
    /// runs over the shared pivot's output to restore its own pivot's
    /// semantics. `0` under exact overlap. Charged to the member's
    /// private fragment on the *shared* side only.
    pub residual_cost: f64,
}

impl GroupMember {
    /// An exact-overlap member (`c = 1`, no residual) — the paper's
    /// original setting.
    pub fn new(pivot_output_cost: f64, above: Vec<f64>) -> Self {
        Self {
            pivot_output_cost,
            above,
            coverage: 1.0,
            residual_cost: 0.0,
        }
    }

    /// Marks this member as a partial-overlap consumer: it needs only a
    /// `coverage` fraction of the shared pivot's output and pays
    /// `residual_cost` per unit progress to filter it.
    #[must_use]
    pub fn with_partial_overlap(mut self, coverage: f64, residual_cost: f64) -> Self {
        self.coverage = coverage;
        self.residual_cost = residual_cost;
        self
    }
}

/// Evaluates the work-sharing trade-off for a group of queries that share
/// an identical sub-plan rooted at a pivot operator φ.
///
/// Three things change under sharing (paper Section 4.3):
/// 1. all replicated work below the pivot is eliminated (one instance),
/// 2. the pivot must multiplex output to all `M` consumers:
///    `p_φ(M) = w_φ + Σ_m s_mφ`,
/// 3. the slowest operator in the group throttles every query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharingEvaluator {
    /// `p_k` for operators strictly below the pivot (single shared instance).
    below: Vec<f64>,
    /// `w_φ`: the pivot's input-side work per unit of forward progress.
    pivot_work: f64,
    /// The member queries.
    members: Vec<GroupMember>,
    /// Queueing regime for the unshared baseline.
    system: SystemKind,
}

/// Full result of one sharing evaluation at a given processor count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Speedup {
    /// `Z(m, n) = x_shared / x_unshared`; sharing is a net win iff > 1.
    pub z: f64,
    /// Group rate of forward progress with sharing.
    pub x_shared: f64,
    /// Group rate of forward progress without sharing.
    pub x_unshared: f64,
    /// Peak processor utilization of the shared plan (`u_shared`).
    pub shared_utilization: f64,
    /// Peak processor utilization of the unshared group (`u_unshared`).
    pub unshared_utilization: f64,
}

impl SharingEvaluator {
    /// Builds an evaluator for `m` *identical* queries sharing at `pivot`
    /// — the common case (all experiments in the paper's Sections 3 and 7
    /// use identical queries per group).
    pub fn homogeneous(plan: &PlanSpec, pivot: NodeId, m: usize) -> Result<Self> {
        Self::heterogeneous(&vec![(plan, pivot); m])
    }

    /// Builds an evaluator for possibly different queries that share a
    /// structurally identical sub-plan. Each entry is `(plan, pivot)`;
    /// all pivoted subtrees must be equivalent
    /// (see [`PlanSpec::subtree_equivalent`]).
    pub fn heterogeneous(queries: &[(&PlanSpec, NodeId)]) -> Result<Self> {
        let (first_plan, first_pivot) = *queries.first().ok_or(ModelError::EmptyGroup)?;
        first_plan.check_node(first_pivot)?;
        for &(plan, pivot) in &queries[1..] {
            plan.check_node(pivot)?;
            if !first_plan.subtree_equivalent(first_pivot, plan, pivot) {
                return Err(ModelError::IncompatiblePivot(format!(
                    "sub-plan rooted at node {} of query '{}' differs from the group's",
                    pivot.index(),
                    plan.op(plan.root()).name,
                )));
            }
        }
        let below = first_plan
            .below(first_pivot)?
            .into_iter()
            .map(|id| first_plan.op(id).p())
            .collect();
        let pivot_work = first_plan.op(first_pivot).w();
        let members = queries
            .iter()
            .map(|&(plan, pivot)| {
                Ok(GroupMember::new(
                    plan.op(pivot).s_per_consumer(),
                    plan.above(pivot)?
                        .into_iter()
                        .map(|id| plan.op(id).p())
                        .collect(),
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            below,
            pivot_work,
            members,
            system: SystemKind::Closed,
        })
    }

    /// Builds an evaluator directly from raw parameters, bypassing plan
    /// construction (useful for parameter sweeps and the sensitivity
    /// analysis of paper Section 6).
    pub fn from_parts(below: Vec<f64>, pivot_work: f64, members: Vec<GroupMember>) -> Result<Self> {
        if members.is_empty() {
            return Err(ModelError::EmptyGroup);
        }
        crate::error::check_cost("pivot w", pivot_work)?;
        for (i, p) in below.iter().enumerate() {
            crate::error::check_cost(&format!("below[{i}].p"), *p)?;
        }
        for (i, mbr) in members.iter().enumerate() {
            crate::error::check_cost(&format!("member[{i}].s"), mbr.pivot_output_cost)?;
            for (k, p) in mbr.above.iter().enumerate() {
                crate::error::check_cost(&format!("member[{i}].above[{k}]"), *p)?;
            }
            crate::error::check_cost(&format!("member[{i}].residual"), mbr.residual_cost)?;
            if !(mbr.coverage > 0.0 && mbr.coverage <= 1.0) {
                return Err(ModelError::InvalidCost {
                    what: format!("member[{i}].coverage (must be in (0, 1])"),
                    value: mbr.coverage,
                });
            }
        }
        Ok(Self {
            below,
            pivot_work,
            members,
            system: SystemKind::Closed,
        })
    }

    /// Selects the queueing regime used for the unshared baseline.
    #[must_use]
    pub fn with_system(mut self, system: SystemKind) -> Self {
        self.system = system;
        self
    }

    /// Number of queries in the group (`m`).
    pub fn m(&self) -> usize {
        self.members.len()
    }

    /// `p_φ(M) = w_φ + Σ_m s_mφ`: the pivot's per-unit-progress work when
    /// serving every member (paper Section 4.3).
    pub fn pivot_p(&self) -> f64 {
        self.pivot_work
            + self
                .members
                .iter()
                .map(|m| m.pivot_output_cost)
                .sum::<f64>()
    }

    /// `p_max` of the shared plan: the slowest of {operators below φ,
    /// the multiplexing pivot, all members' operators above φ and their
    /// residual filters}.
    pub fn shared_p_max(&self) -> f64 {
        let below = self.below.iter().copied().fold(0.0_f64, f64::max);
        let above = self
            .members
            .iter()
            .flat_map(|m| m.above.iter().copied().chain([m.residual_cost]))
            .fold(0.0_f64, f64::max);
        below.max(self.pivot_p()).max(above)
    }

    /// `u'_shared = Σ_{k below φ} p_k + p_φ(M) + Σ_m (r_m + Σ_{k above φ} p_k)`
    /// — under partial overlap each member's residual filter is real
    /// per-unit work the shared plan pays and the unshared one doesn't.
    pub fn shared_total_work(&self) -> f64 {
        let below: f64 = self.below.iter().sum();
        let above: f64 = self
            .members
            .iter()
            .map(|m| m.residual_cost + m.above.iter().sum::<f64>())
            .sum();
        below + self.pivot_p() + above
    }

    /// Peak processor utilization under sharing,
    /// `u_shared = u'_shared / p_max_shared`. The paper's key observation
    /// (Section 6.3): this is *bounded* no matter how many sharers join,
    /// which caps the benefit of sharing on large machines.
    pub fn shared_utilization(&self) -> f64 {
        self.shared_total_work() / self.shared_p_max()
    }

    /// Per-member unshared `p_max` (each member runs its private copy of
    /// the sub-plan; its pivot serves exactly one consumer and emits only
    /// the member's own `c_m` fraction of the wide pivot's output).
    fn member_p_max(&self, member: &GroupMember) -> f64 {
        let below = self.below.iter().copied().fold(0.0_f64, f64::max);
        let pivot = self.pivot_work + member.coverage * member.pivot_output_cost;
        let above = member.above.iter().copied().fold(0.0_f64, f64::max);
        below.max(pivot).max(above)
    }

    /// Per-member unshared `u'` (total work of one private query; its
    /// private pivot emits `c_m` of the wide output, and no residual).
    fn member_total_work(&self, member: &GroupMember) -> f64 {
        let below: f64 = self.below.iter().sum();
        below
            + self.pivot_work
            + member.coverage * member.pivot_output_cost
            + member.above.iter().sum::<f64>()
    }

    /// Group rate without sharing, `x_unshared(M, n)`.
    ///
    /// * Matched rates (identical members) reduce to paper Section 4.2:
    ///   `x = M · min(1/p_max, n / Σ_m u'_m)`.
    /// * Mismatched rates use the Section 5.1 closed-system approximation:
    ///   `r̄` is the harmonic mean of member peak rates and each member is
    ///   throttled only by its own `p_max`, so
    ///   `x = M · r̄ · min(1, n / Σ_m (u'_m / p_max_m))`.
    /// * Under [`SystemKind::Open`], all members are modeled as throttled
    ///   to the slowest one.
    pub fn unshared_rate(&self, n: f64) -> Result<f64> {
        check_n(n)?;
        let m = self.m() as f64;
        match self.system {
            SystemKind::Closed => {
                let sum_pmax: f64 = self.members.iter().map(|mb| self.member_p_max(mb)).sum();
                let r_mean = m / sum_pmax;
                let u_group: f64 = self
                    .members
                    .iter()
                    .map(|mb| self.member_total_work(mb) / self.member_p_max(mb))
                    .sum();
                Ok(m * r_mean * (n / u_group).min(1.0))
            }
            SystemKind::Open => {
                let p_max = self
                    .members
                    .iter()
                    .map(|mb| self.member_p_max(mb))
                    .fold(0.0_f64, f64::max);
                let total: f64 = self
                    .members
                    .iter()
                    .map(|mb| self.member_total_work(mb))
                    .sum();
                Ok(m * (1.0 / p_max).min(n / total))
            }
        }
    }

    /// Peak processor utilization of the unshared group,
    /// `u_unshared = Σ_m u'_m / p_max_m` (closed) — grows without bound
    /// as members are added, unlike `u_shared`.
    pub fn unshared_utilization(&self) -> f64 {
        match self.system {
            SystemKind::Closed => self
                .members
                .iter()
                .map(|mb| self.member_total_work(mb) / self.member_p_max(mb))
                .sum(),
            SystemKind::Open => {
                let p_max = self
                    .members
                    .iter()
                    .map(|mb| self.member_p_max(mb))
                    .fold(0.0_f64, f64::max);
                self.members
                    .iter()
                    .map(|mb| self.member_total_work(mb))
                    .sum::<f64>()
                    / p_max
            }
        }
    }

    /// Group rate with sharing,
    /// `x_shared(M, n) = M · min(1/p_max_shared, n/u'_shared)`
    /// (paper Section 4.3 / worked example 4.4).
    pub fn shared_rate(&self, n: f64) -> Result<f64> {
        check_n(n)?;
        let m = self.m() as f64;
        Ok(m * (1.0 / self.shared_p_max()).min(n / self.shared_total_work()))
    }

    /// `Z(m, n) = x_shared / x_unshared`: sharing is a net win iff
    /// `Z > 1` (paper Section 4).
    pub fn speedup(&self, n: f64) -> f64 {
        self.evaluate(n).map(|s| s.z).unwrap_or(f64::NAN)
    }

    /// Computes the full set of group quantities at `n` processors.
    pub fn evaluate(&self, n: f64) -> Result<Speedup> {
        let x_shared = self.shared_rate(n)?;
        let x_unshared = self.unshared_rate(n)?;
        Ok(Speedup {
            z: x_shared / x_unshared,
            x_shared,
            x_unshared,
            shared_utilization: self.shared_utilization(),
            unshared_utilization: self.unshared_utilization(),
        })
    }

    // --- intra-query worker scaling --------------------------------------
    //
    // With `k` morsel workers per query, parallelizable operator work
    // runs `e(k) = k^κ` times faster, so every `w`-derived `p` term is
    // divided by `e`. The pivot's `Σ s_mφ` output multiplexing is NOT
    // divided: in the morsel engine every parallel group funnels through
    // a single merge task, so delivering to `M` consumers stays serial.
    // Total work `u'` is conserved — parallelism moves work onto more
    // processors, it does not remove any.

    /// `p_φ(M, k) = w_φ/e(k) + Σ_m s_mφ`.
    fn pivot_p_e(&self, e: f64) -> f64 {
        self.pivot_work / e
            + self
                .members
                .iter()
                .map(|m| m.pivot_output_cost)
                .sum::<f64>()
    }

    fn shared_p_max_e(&self, e: f64) -> f64 {
        let below = self.below.iter().copied().fold(0.0_f64, f64::max) / e;
        let above = self
            .members
            .iter()
            .flat_map(|m| m.above.iter().copied().chain([m.residual_cost]))
            .fold(0.0_f64, f64::max)
            / e;
        below.max(self.pivot_p_e(e)).max(above)
    }

    fn member_p_max_e(&self, member: &GroupMember, e: f64) -> f64 {
        let below = self.below.iter().copied().fold(0.0_f64, f64::max) / e;
        let pivot = self.pivot_work / e + member.coverage * member.pivot_output_cost;
        let above = member.above.iter().copied().fold(0.0_f64, f64::max) / e;
        below.max(pivot).max(above)
    }

    /// `p_max` of the shared plan when every query runs `k` morsel
    /// workers. As `k → ∞` this floors at the serial multiplexing cost
    /// `Σ_m s_mφ` — the pivot bottleneck intra-query parallelism cannot
    /// dissolve.
    pub fn shared_p_max_with_workers(&self, scaling: WorkerScaling) -> f64 {
        self.shared_p_max_e(scaling.effective())
    }

    /// Group rate with sharing at `n` processors and `k` workers per
    /// query: `x = M · min(1/p_max(k), n/u'_shared)`.
    pub fn shared_rate_with_workers(&self, n: f64, scaling: WorkerScaling) -> Result<f64> {
        check_n(n)?;
        let m = self.m() as f64;
        Ok(m * (1.0 / self.shared_p_max_e(scaling.effective())).min(n / self.shared_total_work()))
    }

    /// Group rate without sharing at `n` processors and `k` workers per
    /// query (same closed/open split as [`Self::unshared_rate`], with
    /// each member's `p_max` shrunk by `e(k)` except its private `s_mφ`).
    pub fn unshared_rate_with_workers(&self, n: f64, scaling: WorkerScaling) -> Result<f64> {
        check_n(n)?;
        let e = scaling.effective();
        let m = self.m() as f64;
        match self.system {
            SystemKind::Closed => {
                let sum_pmax: f64 = self
                    .members
                    .iter()
                    .map(|mb| self.member_p_max_e(mb, e))
                    .sum();
                let r_mean = m / sum_pmax;
                let u_group: f64 = self
                    .members
                    .iter()
                    .map(|mb| self.member_total_work(mb) / self.member_p_max_e(mb, e))
                    .sum();
                Ok(m * r_mean * (n / u_group).min(1.0))
            }
            SystemKind::Open => {
                let p_max = self
                    .members
                    .iter()
                    .map(|mb| self.member_p_max_e(mb, e))
                    .fold(0.0_f64, f64::max);
                let total: f64 = self
                    .members
                    .iter()
                    .map(|mb| self.member_total_work(mb))
                    .sum();
                Ok(m * (1.0 / p_max).min(n / total))
            }
        }
    }

    /// `Z(m, n, k) = x_shared(k) / x_unshared(k)`: the sharing advisor's
    /// decision value when the engine runs `k` morsel workers per query.
    ///
    /// On a machine large enough that neither side is work-saturated
    /// (`n ≥ u'`), `Z` is non-increasing in `k`: both sides become
    /// pipeline-bound, and only the unshared side's pivot scales with
    /// workers (its `s` serves one consumer), so real intra-query
    /// parallelism erodes the case for sharing — the paper's
    /// aggressive-scheduling argument, with `e(k)` measured rather than
    /// assumed. On a *saturated* machine (`n < u'`) the opposite can
    /// happen: throughput is work-bound on both sides, but parallelizing
    /// `w_φ` relieves the shared pivot's pipeline bottleneck, so modest
    /// `k` can raise `Z` until the shared side is work-bound too.
    pub fn speedup_with_workers(&self, n: f64, scaling: WorkerScaling) -> f64 {
        self.evaluate_with_workers(n, scaling)
            .map(|s| s.z)
            .unwrap_or(f64::NAN)
    }

    /// Computes the full set of group quantities at `n` processors with
    /// `k` morsel workers per query. [`WorkerScaling::serial`] reproduces
    /// [`Self::evaluate`] exactly.
    pub fn evaluate_with_workers(&self, n: f64, scaling: WorkerScaling) -> Result<Speedup> {
        let e = scaling.effective();
        let x_shared = self.shared_rate_with_workers(n, scaling)?;
        let x_unshared = self.unshared_rate_with_workers(n, scaling)?;
        let unshared_utilization = match self.system {
            SystemKind::Closed => self
                .members
                .iter()
                .map(|mb| self.member_total_work(mb) / self.member_p_max_e(mb, e))
                .sum(),
            SystemKind::Open => {
                let p_max = self
                    .members
                    .iter()
                    .map(|mb| self.member_p_max_e(mb, e))
                    .fold(0.0_f64, f64::max);
                self.members
                    .iter()
                    .map(|mb| self.member_total_work(mb))
                    .sum::<f64>()
                    / p_max
            }
        };
        Ok(Speedup {
            z: x_shared / x_unshared,
            x_shared,
            x_unshared,
            shared_utilization: self.shared_total_work() / self.shared_p_max_e(e),
            unshared_utilization,
        })
    }
}

fn check_n(n: f64) -> Result<()> {
    if n.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater) && n.is_finite() {
        Ok(())
    } else {
        Err(ModelError::InvalidProcessors(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorSpec;

    fn q6() -> (PlanSpec, NodeId) {
        let mut b = PlanSpec::new();
        let scan = b.add_leaf(OperatorSpec::new("scan", vec![9.66], vec![10.34]));
        let agg = b.add_node(OperatorSpec::new("agg", vec![0.97], vec![]), vec![scan]);
        (b.finish(agg).unwrap(), scan)
    }

    fn synthetic() -> (PlanSpec, NodeId) {
        let mut b = PlanSpec::new();
        let bottom = b.add_leaf(OperatorSpec::new("bottom", vec![10.0], vec![]));
        let pivot = b.add_node(
            OperatorSpec::new("pivot", vec![6.0], vec![1.0]),
            vec![bottom],
        );
        let top = b.add_node(OperatorSpec::new("top", vec![10.0], vec![]), vec![pivot]);
        (b.finish(top).unwrap(), pivot)
    }

    #[test]
    fn q6_shared_equations_match_paper_section_4_4() {
        let (plan, scan) = q6();
        for m in [1usize, 2, 8, 16, 48] {
            let ev = SharingEvaluator::homogeneous(&plan, scan, m).unwrap();
            // p_phi(M) = 9.66 + 10.34 M
            assert!((ev.pivot_p() - (9.66 + 10.34 * m as f64)).abs() < 1e-9);
            // u'_shared = 9.66 + 11.31 M  (10.34 s + 0.97 agg per member)
            assert!((ev.shared_total_work() - (9.66 + 11.31 * m as f64)).abs() < 1e-9);
        }
    }

    #[test]
    fn q6_unshared_equations_match_paper_section_4_4() {
        let (plan, scan) = q6();
        for m in [1usize, 4, 16, 48] {
            let ev = SharingEvaluator::homogeneous(&plan, scan, m).unwrap();
            for n in [1.0, 2.0, 8.0, 32.0] {
                // x_unshared(M, n) = min(M/20, n/20.97)
                let expect = (m as f64 / 20.0).min(n / 20.97);
                assert!(
                    (ev.unshared_rate(n).unwrap() - expect).abs() < 1e-9,
                    "m={m} n={n}"
                );
            }
        }
    }

    #[test]
    fn q6_sharing_only_attractive_on_one_processor() {
        // Paper Section 4.4: "work sharing is only attractive when one
        // processor is available."
        let (plan, scan) = q6();
        for m in [8usize, 16, 32, 48] {
            let ev = SharingEvaluator::homogeneous(&plan, scan, m).unwrap();
            assert!(ev.speedup(1.0) > 1.0, "sharing should win at n=1, m={m}");
            assert!(ev.speedup(8.0) < 1.0, "sharing should lose at n=8, m={m}");
            assert!(ev.speedup(32.0) < 1.0, "sharing should lose at n=32, m={m}");
        }
    }

    #[test]
    fn q6_32cpu_large_loss_matches_intro_figure_1() {
        // Intro: shared execution utilized ~3 of 32 contexts -> ~10x gap.
        let (plan, scan) = q6();
        let ev = SharingEvaluator::homogeneous(&plan, scan, 48).unwrap();
        let s = ev.evaluate(32.0).unwrap();
        assert!(s.z < 0.12, "expected ~10x loss, got Z={}", s.z);
        // Shared utilization is tiny compared to 32 contexts.
        assert!(s.shared_utilization < 3.0);
        assert!(s.unshared_utilization > 32.0);
    }

    #[test]
    fn synthetic_shared_utilization_is_bounded_near_eleven() {
        // Section 6.1: sharing "utilizes only 10 cores even for large
        // numbers of shared queries" (limit of u_shared is 11 here).
        let (plan, pivot) = synthetic();
        let ev = SharingEvaluator::homogeneous(&plan, pivot, 1000).unwrap();
        let u = ev.shared_utilization();
        assert!(u > 10.0 && u < 11.5, "u_shared={u}");
    }

    #[test]
    fn synthetic_three_phase_behaviour_at_16_cpus() {
        // Section 6.1: for some processor counts sharing is "sometimes"
        // worthwhile: loses at moderate load, wins at high load.
        let (plan, pivot) = synthetic();
        let z = |m: usize, n: f64| {
            SharingEvaluator::homogeneous(&plan, pivot, m)
                .unwrap()
                .speedup(n)
        };
        // 4 CPUs: always (paper: "always (4 CPU)").
        assert!(z(8, 4.0) > 1.0 && z(40, 4.0) > 1.0);
        // 32 CPUs: never.
        assert!(z(8, 32.0) < 1.0 && z(40, 32.0) < 1.0);
        // 16 CPUs: sometimes — loses at moderate m, wins at large m.
        assert!(z(8, 16.0) < 1.0, "z(8,16)={}", z(8, 16.0));
        assert!(z(40, 16.0) > 1.0, "z(40,16)={}", z(40, 16.0));
    }

    #[test]
    fn one_processor_sharing_never_hurts_baseline_queries() {
        // On a uniprocessor any saved work helps (Section 3.3).
        let (plan, pivot) = synthetic();
        for m in [2usize, 4, 16, 48] {
            let ev = SharingEvaluator::homogeneous(&plan, pivot, m).unwrap();
            assert!(ev.speedup(1.0) >= 1.0, "m={m}");
        }
    }

    #[test]
    fn single_member_group_is_neutral() {
        // Sharing a "group" of one query neither helps nor hurts
        // (p_phi(1) equals the private pivot cost).
        let (plan, pivot) = synthetic();
        let ev = SharingEvaluator::homogeneous(&plan, pivot, 1).unwrap();
        for n in [1.0, 4.0, 32.0] {
            assert!((ev.speedup(n) - 1.0).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn zero_output_cost_sharing_always_wins_given_enough_load() {
        // With s = 0 sharing imposes no serialization (Section 6.2).
        let mut b = PlanSpec::new();
        let bottom = b.add_leaf(OperatorSpec::new("bottom", vec![10.0], vec![]));
        let pivot = b.add_node(
            OperatorSpec::new("pivot", vec![6.0], vec![0.0]),
            vec![bottom],
        );
        let top = b.add_node(OperatorSpec::new("top", vec![10.0], vec![]), vec![pivot]);
        let plan = b.finish(top).unwrap();
        let ev = SharingEvaluator::homogeneous(&plan, pivot, 30).unwrap();
        assert!(ev.speedup(32.0) > 1.0);
    }

    #[test]
    fn empty_group_rejected() {
        assert!(matches!(
            SharingEvaluator::heterogeneous(&[]),
            Err(ModelError::EmptyGroup)
        ));
        assert!(SharingEvaluator::from_parts(vec![], 1.0, vec![]).is_err());
    }

    #[test]
    fn incompatible_pivots_rejected() {
        let (p1, s1) = q6();
        let (p2, piv2) = synthetic();
        let err = SharingEvaluator::heterogeneous(&[(&p1, s1), (&p2, piv2)]);
        assert!(matches!(err, Err(ModelError::IncompatiblePivot(_))));
    }

    #[test]
    fn heterogeneous_tops_mismatched_rates_closed_system() {
        // Two queries sharing an identical scan, one with a heavy top.
        let mut b1 = PlanSpec::new();
        let sc1 = b1.add_leaf(OperatorSpec::new("scan", vec![4.0], vec![1.0]));
        let t1 = b1.add_node(OperatorSpec::new("light", vec![1.0], vec![]), vec![sc1]);
        let q_light = b1.finish(t1).unwrap();

        let mut b2 = PlanSpec::new();
        let sc2 = b2.add_leaf(OperatorSpec::new("scan", vec![4.0], vec![1.0]));
        let t2 = b2.add_node(OperatorSpec::new("heavy", vec![20.0], vec![]), vec![sc2]);
        let q_heavy = b2.finish(t2).unwrap();

        let ev = SharingEvaluator::heterogeneous(&[(&q_light, sc1), (&q_heavy, sc2)]).unwrap();
        assert_eq!(ev.m(), 2);
        // Closed system: the light query contributes its faster rate.
        let closed = ev.unshared_rate(64.0).unwrap();
        let open = ev
            .clone()
            .with_system(SystemKind::Open)
            .unshared_rate(64.0)
            .unwrap();
        assert!(closed > open, "closed {closed} should beat open {open}");
        // Shared: both throttled by the heavy top (p_max = 20).
        assert!((ev.shared_p_max() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_rejects_bad_n_via_nan() {
        let (plan, pivot) = synthetic();
        let ev = SharingEvaluator::homogeneous(&plan, pivot, 2).unwrap();
        assert!(ev.speedup(0.0).is_nan());
        assert!(ev.evaluate(-3.0).is_err());
    }

    #[test]
    fn z_non_increasing_in_processor_count() {
        // More processors only ever erode the benefit of sharing: the
        // shared plan saturates at n_s = u'_s / p_max_s, the unshared
        // group at the (never smaller) n_u = u'_u / p_max_u, so Z(m, ·)
        // is flat, then ∝ 1/n, then flat again — never increasing.
        for (plan, pivot) in [q6(), synthetic()] {
            for m in [2usize, 8, 32] {
                let ev = SharingEvaluator::homogeneous(&plan, pivot, m).unwrap();
                let mut prev = f64::INFINITY;
                for n in [
                    1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0, 128.0,
                ] {
                    let z = ev.speedup(n);
                    assert!(
                        z <= prev + 1e-12,
                        "Z must not increase with n: m={m} n={n} z={z} prev={prev}"
                    );
                    prev = z;
                }
            }
        }
    }

    #[test]
    fn z_non_decreasing_in_group_size_on_uniprocessor() {
        // On one processor every additional sharer saves more replicated
        // below-pivot work while the pivot's serialization cannot bite
        // (there is no parallelism to lose), so Z(·, 1) only grows.
        for (plan, pivot) in [q6(), synthetic()] {
            let mut prev = 0.0;
            for m in 1..=32 {
                let z = SharingEvaluator::homogeneous(&plan, pivot, m)
                    .unwrap()
                    .speedup(1.0);
                assert!(
                    z + 1e-12 >= prev,
                    "Z must not drop as sharers join at n=1: m={m} z={z} prev={prev}"
                );
                prev = z;
            }
        }
    }

    #[test]
    fn group_rates_monotone_in_n_and_capped() {
        // Both x_shared(n) and x_unshared(n) are min(rate-cap, n/work)
        // shapes: non-decreasing in n and capped by the group's peak.
        for (plan, pivot) in [q6(), synthetic()] {
            for m in [1usize, 4, 16] {
                let ev = SharingEvaluator::homogeneous(&plan, pivot, m).unwrap();
                let m_f = m as f64;
                let shared_cap = m_f / ev.shared_p_max();
                let mut prev_s = 0.0;
                let mut prev_u = 0.0;
                for n in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
                    let xs = ev.shared_rate(n).unwrap();
                    let xu = ev.unshared_rate(n).unwrap();
                    assert!(xs + 1e-12 >= prev_s, "x_shared dipped at m={m} n={n}");
                    assert!(xu + 1e-12 >= prev_u, "x_unshared dipped at m={m} n={n}");
                    assert!(
                        xs <= shared_cap + 1e-12,
                        "x_shared above cap at m={m} n={n}"
                    );
                    prev_s = xs;
                    prev_u = xu;
                }
            }
        }
    }

    #[test]
    fn from_parts_matches_plan_construction() {
        let (plan, pivot) = synthetic();
        let from_plan = SharingEvaluator::homogeneous(&plan, pivot, 5).unwrap();
        let from_parts = SharingEvaluator::from_parts(
            vec![10.0],
            6.0,
            vec![GroupMember::new(1.0, vec![10.0]); 5],
        )
        .unwrap();
        for n in [1.0, 8.0, 32.0] {
            assert!((from_plan.speedup(n) - from_parts.speedup(n)).abs() < 1e-12);
        }
    }

    #[test]
    fn worker_scaling_validation() {
        assert!(WorkerScaling::new(0, 1.0).is_err());
        assert!(WorkerScaling::new(4, 0.0).is_err());
        assert!(WorkerScaling::new(4, 1.5).is_err());
        assert!(WorkerScaling::new(4, -0.3).is_err());
        let s = WorkerScaling::new(4, 0.5).unwrap();
        assert!((s.effective() - 2.0).abs() < 1e-12);
        assert!((WorkerScaling::ideal(8).unwrap().effective() - 8.0).abs() < 1e-12);
        assert!((WorkerScaling::serial().effective() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serial_worker_scaling_reproduces_evaluate() {
        let serial = WorkerScaling::serial();
        for (plan, pivot) in [q6(), synthetic()] {
            for m in [1usize, 4, 16] {
                let ev = SharingEvaluator::homogeneous(&plan, pivot, m).unwrap();
                for n in [1.0, 4.0, 32.0] {
                    let base = ev.evaluate(n).unwrap();
                    let with = ev.evaluate_with_workers(n, serial).unwrap();
                    assert_eq!(base.z, with.z, "m={m} n={n}");
                    assert_eq!(base.x_shared, with.x_shared);
                    assert_eq!(base.x_unshared, with.x_unshared);
                    assert_eq!(base.shared_utilization, with.shared_utilization);
                    assert_eq!(base.unshared_utilization, with.unshared_utilization);
                }
            }
        }
    }

    #[test]
    fn worker_scaling_erodes_sharing_benefit_on_unsaturated_machines() {
        // With processors to spare, both sides are pipeline-bound.
        // Intra-query parallelism speeds the unshared group's pivots
        // (each serves one consumer) but cannot shrink the shared
        // pivot's Σ s_mφ multiplexing, so Z(m, n, k) is non-increasing
        // in k.
        let n = 1.0e6; // effectively unbounded processors
        for (plan, pivot) in [q6(), synthetic()] {
            for m in [2usize, 8, 32] {
                let ev = SharingEvaluator::homogeneous(&plan, pivot, m).unwrap();
                let mut prev = f64::INFINITY;
                for k in [1u32, 2, 4, 8, 16] {
                    let z = ev.speedup_with_workers(n, WorkerScaling::ideal(k).unwrap());
                    assert!(
                        z <= prev + 1e-12,
                        "Z must not increase with workers: m={m} k={k} z={z} prev={prev}"
                    );
                    prev = z;
                }
            }
        }
    }

    #[test]
    fn worker_scaling_can_help_sharing_on_saturated_machines() {
        // On an overloaded machine both sides are work-bound, so the
        // unshared rate is flat in k — but the shared side at k=1 is
        // still held below its work bound by the multiplexing pivot's
        // p_max. Parallelizing w_φ relieves that pipeline bottleneck,
        // so Z rises with modest k. This is the regime where intra-query
        // parallelism and work sharing are complements, not rivals.
        let (plan, pivot) = synthetic();
        let ev = SharingEvaluator::homogeneous(&plan, pivot, 8).unwrap();
        let n = 8.0;
        let z1 = ev.speedup_with_workers(n, WorkerScaling::serial());
        let z2 = ev.speedup_with_workers(n, WorkerScaling::ideal(2).unwrap());
        assert!(
            z2 > z1,
            "parallelizing the shared pivot should relieve its bottleneck: z1={z1} z2={z2}"
        );
        // The unshared side is work-bound throughout, so flat in k.
        let xu1 = ev
            .unshared_rate_with_workers(n, WorkerScaling::serial())
            .unwrap();
        let xu2 = ev
            .unshared_rate_with_workers(n, WorkerScaling::ideal(2).unwrap())
            .unwrap();
        assert!((xu1 - xu2).abs() < 1e-12);
    }

    #[test]
    fn shared_p_max_floors_at_serial_multiplexing_cost() {
        let (plan, pivot) = synthetic();
        let ev = SharingEvaluator::homogeneous(&plan, pivot, 8).unwrap();
        // s_mφ = 1.0 per member, 8 members: no amount of intra-query
        // parallelism pushes the shared pivot below Σ s_mφ = 8.
        let huge = WorkerScaling::new(1 << 20, 1.0).unwrap();
        let floor = ev.shared_p_max_with_workers(huge);
        assert!(
            (floor - 8.0).abs() < 1e-2,
            "shared p_max should floor at Σ s_mφ, got {floor}"
        );
        // And scaling monotonically lowers p_max toward that floor.
        let mut prev = f64::INFINITY;
        for k in [1u32, 2, 4, 8, 64] {
            let p = ev.shared_p_max_with_workers(WorkerScaling::ideal(k).unwrap());
            assert!(p <= prev + 1e-12);
            assert!(p + 1e-12 >= 8.0);
            prev = p;
        }
    }

    #[test]
    fn sublinear_kappa_interpolates_between_serial_and_ideal() {
        let (plan, pivot) = synthetic();
        let ev = SharingEvaluator::homogeneous(&plan, pivot, 4).unwrap();
        let n = 1.0e6; // unsaturated: the regime where Z is monotone in e(k)
        let z1 = ev.speedup_with_workers(n, WorkerScaling::serial());
        let z_half = ev.speedup_with_workers(n, WorkerScaling::new(4, 0.5).unwrap());
        let z_ideal = ev.speedup_with_workers(n, WorkerScaling::ideal(4).unwrap());
        assert!(
            z_ideal <= z_half + 1e-12 && z_half <= z1 + 1e-12,
            "κ should interpolate: z1={z1} z_half={z_half} z_ideal={z_ideal}"
        );
    }

    // --- partial overlap (subsumption sharing) ---------------------------

    /// A Q6-style group built from parts: below empty, pivot w = 9.66,
    /// member s = 10.34, one above operator p = 0.97.
    fn q6_parts(members: Vec<GroupMember>) -> SharingEvaluator {
        SharingEvaluator::from_parts(vec![], 9.66, members).unwrap()
    }

    #[test]
    fn full_coverage_members_reproduce_exact_overlap() {
        let exact = q6_parts(vec![GroupMember::new(10.34, vec![0.97]); 4]);
        let partial = q6_parts(vec![
            GroupMember::new(10.34, vec![0.97])
                .with_partial_overlap(1.0, 0.0);
            4
        ]);
        for n in [1.0, 4.0, 32.0] {
            assert_eq!(exact.speedup(n), partial.speedup(n));
            assert_eq!(exact.shared_p_max(), partial.shared_p_max());
            assert_eq!(exact.shared_total_work(), partial.shared_total_work());
        }
    }

    #[test]
    fn lower_coverage_weakens_the_case_for_sharing() {
        // The shared side is fixed (it runs the wide pivot either way);
        // the unshared baseline gets cheaper as members need less of the
        // wide output, so Z is non-increasing in coverage drop.
        let mut prev = f64::INFINITY;
        for c in [1.0, 0.75, 0.5, 0.25, 0.05] {
            let ev = q6_parts(vec![
                GroupMember::new(10.34, vec![0.97])
                    .with_partial_overlap(c, 0.0);
                4
            ]);
            let z = ev.speedup(1.0);
            assert!(
                z <= prev + 1e-12,
                "Z should not rise as coverage drops: c={c} z={z} prev={prev}"
            );
            prev = z;
        }
    }

    #[test]
    fn residual_cost_charges_only_the_shared_side() {
        let free = q6_parts(vec![
            GroupMember::new(10.34, vec![0.97])
                .with_partial_overlap(0.5, 0.0);
            4
        ]);
        let taxed = q6_parts(vec![
            GroupMember::new(10.34, vec![0.97])
                .with_partial_overlap(0.5, 2.0);
            4
        ]);
        // Residual work raises shared u' by Σ r_m and leaves the
        // unshared baseline untouched.
        assert!(
            (taxed.shared_total_work() - free.shared_total_work() - 8.0).abs() < 1e-12,
            "residuals must add Σ r_m to shared total work"
        );
        assert_eq!(
            free.unshared_rate(4.0).unwrap(),
            taxed.unshared_rate(4.0).unwrap()
        );
        // On a saturated machine the shared side is work-bound, so the
        // residual tax strictly lowers Z.
        assert!(taxed.speedup(1.0) < free.speedup(1.0));
    }

    #[test]
    fn huge_residual_dominates_shared_p_max() {
        let ev = q6_parts(vec![
            GroupMember::new(10.34, vec![0.97])
                .with_partial_overlap(0.9, 500.0);
            2
        ]);
        assert_eq!(ev.shared_p_max(), 500.0);
        // Worker scaling divides residual work like any other above term.
        let p = ev.shared_p_max_with_workers(WorkerScaling::ideal(4).unwrap());
        assert!((p - 125.0).abs() < 1e-9);
    }

    #[test]
    fn from_parts_validates_coverage_and_residual() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = SharingEvaluator::from_parts(
                vec![],
                1.0,
                vec![GroupMember::new(1.0, vec![]).with_partial_overlap(bad, 0.0)],
            )
            .unwrap_err();
            assert!(err.to_string().contains("coverage"), "bad={bad}: {err}");
        }
        assert!(SharingEvaluator::from_parts(
            vec![],
            1.0,
            vec![GroupMember::new(1.0, vec![]).with_partial_overlap(0.5, -1.0)],
        )
        .is_err());
    }
}
