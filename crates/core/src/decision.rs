//! Runtime share/don't-share decisions (paper Sections 7–8).
//!
//! The model's speedup predictions carry error (5–6% average in the
//! paper), but its *binary recommendations* are nearly always correct.
//! [`ShareAdvisor`] wraps a hardware description and answers the only
//! question the engine needs: *given this group and this machine, should
//! we share?*

use crate::contention::HardwareModel;
use crate::error::Result;
use crate::plan::{NodeId, PlanSpec};
use crate::sharing::{SharingEvaluator, Speedup};
use serde::{Deserialize, Serialize};

/// A share/don't-share recommendation with its supporting numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Whether sharing is predicted to be a net win (`Z > 1`).
    pub share: bool,
    /// The predicted speedup details.
    pub speedup: Speedup,
    /// Effective processors assumed for shared execution.
    pub n_shared: f64,
    /// Effective processors assumed for unshared execution.
    pub n_unshared: f64,
}

/// Stateless advisor binding the model to a hardware description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShareAdvisor {
    hardware: HardwareModel,
    /// Margin of predicted benefit required before recommending sharing;
    /// `0.0` recommends sharing whenever `Z > 1` exactly. A small
    /// positive hysteresis (e.g. `0.02`) avoids flapping on borderline
    /// groups whose parameters carry measurement noise.
    hysteresis: f64,
}

impl ShareAdvisor {
    /// Creates an advisor for the given hardware.
    pub fn new(hardware: HardwareModel) -> Self {
        Self {
            hardware,
            hysteresis: 0.0,
        }
    }

    /// Requires `Z > 1 + hysteresis` before recommending sharing.
    #[must_use]
    pub fn with_hysteresis(mut self, hysteresis: f64) -> Self {
        self.hysteresis = hysteresis.max(0.0);
        self
    }

    /// The hardware description in use.
    pub fn hardware(&self) -> HardwareModel {
        self.hardware
    }

    /// Evaluates a prepared sharing group.
    pub fn advise(&self, group: &SharingEvaluator) -> Result<Decision> {
        let n_shared = self.hardware.effective_shared();
        let n_unshared = self.hardware.effective_unshared();
        let x_shared = group.shared_rate(n_shared)?;
        let x_unshared = group.unshared_rate(n_unshared)?;
        let speedup = Speedup {
            z: x_shared / x_unshared,
            x_shared,
            x_unshared,
            shared_utilization: group.shared_utilization(),
            unshared_utilization: group.unshared_utilization(),
        };
        Ok(Decision {
            share: speedup.z > 1.0 + self.hysteresis,
            speedup,
            n_shared,
            n_unshared,
        })
    }

    /// Convenience: evaluates sharing `m` identical queries at `pivot`.
    pub fn advise_homogeneous(&self, plan: &PlanSpec, pivot: NodeId, m: usize) -> Result<Decision> {
        self.advise(&SharingEvaluator::homogeneous(plan, pivot, m)?)
    }

    /// Admission test for the engine (paper Section 8.1): a group of `m`
    /// queries is running/queued shared; should a newly arrived identical
    /// query join it? Recommends joining iff the expanded group is
    /// predicted to outperform unshared execution of `m + 1` queries.
    pub fn advise_admission(
        &self,
        plan: &PlanSpec,
        pivot: NodeId,
        current_group: usize,
    ) -> Result<Decision> {
        self.advise_homogeneous(plan, pivot, current_group + 1)
    }
}

/// A recommended partition of `m` identical queries into sharing groups
/// (paper Section 8.1: "sharing fewer queries at a time is one
/// potential way to exploit work sharing while reducing the
/// serialization penalty").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Group sizes (non-increasing; sizes differ by at most one).
    pub groups: Vec<usize>,
    /// Predicted aggregate rate of forward progress.
    pub rate: f64,
    /// Predicted rate of the two baselines, for reporting.
    pub never_share_rate: f64,
    /// Predicted rate of the single-group (always-share) extreme.
    pub one_group_rate: f64,
}

impl Partition {
    /// The dominant group size.
    pub fn group_size(&self) -> usize {
        self.groups.first().copied().unwrap_or(0)
    }
}

/// Finds the group size that maximizes predicted aggregate throughput
/// when partitioning `m` identical queries into sharing groups on `n`
/// processors, assuming the processors are divided among groups in
/// proportion to their sizes.
///
/// For each candidate size `g`, the queries split into
/// `ceil(m/g)` groups (sizes as equal as possible); a group of size
/// `gᵢ` receives `n · gᵢ / m` processors and contributes
/// `x_shared(gᵢ, n·gᵢ/m)`. `g = 1` reproduces the never-share baseline
/// and `g = m` the always-share extreme, so the result is never worse
/// than either.
pub fn optimal_partition(plan: &PlanSpec, pivot: NodeId, m: usize, n: f64) -> Result<Partition> {
    if m == 0 {
        return Err(crate::error::ModelError::EmptyGroup);
    }
    let rate_for = |sizes: &[usize]| -> Result<f64> {
        let mut total = 0.0;
        for &g in sizes {
            let share = (n * g as f64 / m as f64).max(f64::MIN_POSITIVE);
            total += SharingEvaluator::homogeneous(plan, pivot, g)?.shared_rate(share)?;
        }
        Ok(total)
    };
    let sizes_for = |g: usize| -> Vec<usize> {
        // Distribute m into ceil(m/g) groups with sizes differing by <= 1.
        let k = m.div_ceil(g);
        let base = m / k;
        let extra = m % k;
        let mut sizes: Vec<usize> = (0..k).map(|i| base + usize::from(i < extra)).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    };
    let mut best: Option<Partition> = None;
    let never = rate_for(&sizes_for(1))?;
    let one_group = rate_for(&sizes_for(m))?;
    for g in 1..=m {
        let sizes = sizes_for(g);
        let rate = rate_for(&sizes)?;
        // Ties break toward larger groups: equal predicted rate but
        // more redundant work eliminated (leaving more slack for
        // anything else the machine runs).
        let better = match &best {
            None => true,
            Some(b) => rate > b.rate + 1e-12 || (rate >= b.rate - 1e-12 && g > b.group_size()),
        };
        if better {
            best = Some(Partition {
                groups: sizes,
                rate,
                never_share_rate: never,
                one_group_rate: one_group,
            });
        }
    }
    Ok(best.expect("at least g=1 evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorSpec;

    fn q6() -> (PlanSpec, NodeId) {
        let mut b = PlanSpec::new();
        let scan = b.add_leaf(OperatorSpec::new("scan", vec![9.66], vec![10.34]));
        let agg = b.add_node(OperatorSpec::new("agg", vec![0.97], vec![]), vec![scan]);
        (b.finish(agg).unwrap(), scan)
    }

    fn join_heavy() -> (PlanSpec, NodeId) {
        let mut b = PlanSpec::new();
        let s1 = b.add_leaf(OperatorSpec::new("scan1", vec![12.0], vec![1.0]));
        let s2 = b.add_leaf(OperatorSpec::new("scan2", vec![30.0], vec![1.0]));
        let join = b.add_node(
            OperatorSpec::new("join", vec![1.0, 2.0], vec![0.05]),
            vec![s1, s2],
        );
        let agg = b.add_node(OperatorSpec::new("agg", vec![0.5], vec![]), vec![join]);
        (b.finish(agg).unwrap(), join)
    }

    #[test]
    fn advisor_matches_paper_q6_regimes() {
        let (plan, scan) = q6();
        let uni = ShareAdvisor::new(HardwareModel::ideal(1));
        let cmp32 = ShareAdvisor::new(HardwareModel::ideal(32));
        assert!(uni.advise_homogeneous(&plan, scan, 16).unwrap().share);
        assert!(!cmp32.advise_homogeneous(&plan, scan, 16).unwrap().share);
    }

    #[test]
    fn advisor_never_penalizes_join_heavy() {
        // Join-heavy sharing never hurts (Z >= 1 everywhere) ...
        let (plan, join) = join_heavy();
        for contexts in [1, 2, 8, 32] {
            let adv = ShareAdvisor::new(HardwareModel::ideal(contexts));
            for m in [2usize, 8, 32, 48] {
                let d = adv.advise_homogeneous(&plan, join, m).unwrap();
                assert!(
                    d.speedup.z >= 1.0 - 1e-9,
                    "contexts={contexts} m={m} z={}",
                    d.speedup.z
                );
            }
        }
    }

    #[test]
    fn advisor_shares_join_heavy_under_load() {
        // ... and is an outright win whenever the machine would saturate
        // (m >= contexts), which is the regime the paper plots in Fig. 2.
        let (plan, join) = join_heavy();
        for (contexts, m) in [
            (1u32, 2usize),
            (2, 2),
            (2, 8),
            (8, 8),
            (8, 32),
            (32, 32),
            (32, 48),
        ] {
            let adv = ShareAdvisor::new(HardwareModel::ideal(contexts));
            let d = adv.advise_homogeneous(&plan, join, m).unwrap();
            assert!(d.share, "contexts={contexts} m={m} z={}", d.speedup.z);
        }
    }

    #[test]
    fn hysteresis_suppresses_borderline_recommendations() {
        let (plan, scan) = q6();
        // Pick a point with Z barely above 1: Q6 at 2 CPUs crosses the
        // break-even line around m ~ 68 clients.
        let adv = ShareAdvisor::new(HardwareModel::ideal(2));
        let d = adv.advise_homogeneous(&plan, scan, 100).unwrap();
        assert!(d.speedup.z > 1.0 && d.speedup.z < 1.02, "z={}", d.speedup.z);
        assert!(d.share);
        let cautious = adv.with_hysteresis(0.05);
        assert!(!cautious.advise_homogeneous(&plan, scan, 100).unwrap().share);
    }

    #[test]
    fn admission_equivalent_to_group_of_m_plus_one() {
        let (plan, scan) = q6();
        let adv = ShareAdvisor::new(HardwareModel::ideal(8));
        let admit = adv.advise_admission(&plan, scan, 4).unwrap();
        let group5 = adv.advise_homogeneous(&plan, scan, 5).unwrap();
        assert_eq!(admit.share, group5.share);
        assert!((admit.speedup.z - group5.speedup.z).abs() < 1e-12);
    }

    #[test]
    fn optimal_partition_never_worse_than_either_extreme() {
        let (plan, scan) = q6();
        for (m, n) in [(8usize, 4.0), (16, 8.0), (48, 32.0), (4, 1.0)] {
            let p = optimal_partition(&plan, scan, m, n).unwrap();
            assert!(p.rate >= p.never_share_rate - 1e-12, "m={m} n={n}: {p:?}");
            assert!(p.rate >= p.one_group_rate - 1e-12, "m={m} n={n}: {p:?}");
            assert_eq!(p.groups.iter().sum::<usize>(), m);
        }
    }

    #[test]
    fn optimal_partition_uses_one_group_on_uniprocessor() {
        // On 1 CPU sharing everything is best for Q6 (Figure 1).
        let (plan, scan) = q6();
        let p = optimal_partition(&plan, scan, 16, 1.0).unwrap();
        assert_eq!(p.groups, vec![16]);
    }

    #[test]
    fn optimal_partition_prefers_small_groups_on_big_machine() {
        // Section 8.1: on 32 CPUs with 48 Q6 clients, a single group
        // serializes and singletons waste sharing; small groups win.
        let (plan, scan) = q6();
        let p = optimal_partition(&plan, scan, 48, 32.0).unwrap();
        assert!(
            p.group_size() >= 2 && p.group_size() <= 6,
            "expected small groups, got {:?}",
            p.groups
        );
        assert!(p.rate > p.never_share_rate * 1.01);
        assert!(p.rate > p.one_group_rate * 1.5);
    }

    #[test]
    fn optimal_partition_join_heavy_prefers_one_group() {
        let (plan, join) = join_heavy();
        let p = optimal_partition(&plan, join, 16, 8.0).unwrap();
        assert_eq!(p.groups, vec![16], "join-heavy should coalesce fully");
    }

    #[test]
    fn optimal_partition_rejects_empty() {
        let (plan, scan) = q6();
        assert!(optimal_partition(&plan, scan, 0, 8.0).is_err());
    }

    #[test]
    fn contention_can_flip_a_decision() {
        let (plan, scan) = q6();
        // Ideal 4-CPU machine: sharing 48 Q6 queries is a loss.
        let ideal = ShareAdvisor::new(HardwareModel::ideal(4));
        assert!(!ideal.advise_homogeneous(&plan, scan, 48).unwrap().share);
        // Heavy contention on unshared execution (more aggregate data
        // touched) shrinks its effective processors toward 1, where
        // sharing wins.
        let contended =
            ShareAdvisor::new(HardwareModel::with_mode_contention(4, 0.05, 1.0).unwrap());
        assert!(contended.advise_homogeneous(&plan, scan, 48).unwrap().share);
    }
}
