//! Parameter estimation from profiled runs (paper Section 3.1).
//!
//! The model is parameterized by per-operator active time per unit of
//! forward progress. Profiling a few test invocations — both with and
//! without work sharing — yields a system of linear equations whose
//! solution divides each operator's active time among `w` and `s`:
//!
//! * an **unshared** run gives each operator's total `p_k` directly
//!   (active time / units of forward progress);
//! * **shared** runs at different group sizes `M` give the pivot's
//!   `p_φ(M) = w_φ + M·s_φ`; a least-squares fit over two or more values
//!   of `M` separates `w_φ` from `s_φ`.

use crate::error::{ModelError, Result};
use crate::linalg;
use serde::{Deserialize, Serialize};

/// One profiled data point for a pivot operator: with `sharers` consumers
/// attached, the operator was active `active_time` units while the group
/// made `progress_units` units of forward progress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PivotObservation {
    /// Number of consumers the pivot was serving (`M`).
    pub sharers: usize,
    /// Total active (busy) time of the pivot during the window.
    pub active_time: f64,
    /// Units of forward progress the group completed in the window.
    pub progress_units: f64,
}

impl PivotObservation {
    /// Active time per unit of forward progress, `p_φ(M)`.
    pub fn p(&self) -> f64 {
        self.active_time / self.progress_units
    }
}

/// Result of fitting the pivot law `p_φ(M) = w + M·s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PivotFit {
    /// Estimated private work per unit of forward progress (`w_φ`).
    pub w: f64,
    /// Estimated per-consumer output cost (`s_φ`).
    pub s: f64,
    /// Residual sum of squares of the fit (0 for an exact fit).
    pub rss: f64,
    /// Number of observations used.
    pub observations: usize,
}

/// Estimates an operator's total `p` from an unshared profiling run.
///
/// Returns an error if `progress_units` is not positive.
pub fn p_from_profile(active_time: f64, progress_units: f64) -> Result<f64> {
    if progress_units.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || !progress_units.is_finite()
    {
        return Err(ModelError::Estimation(format!(
            "progress must be positive and finite, got {progress_units}"
        )));
    }
    if !active_time.is_finite() || active_time < 0.0 {
        return Err(ModelError::Estimation(format!(
            "active time must be non-negative and finite, got {active_time}"
        )));
    }
    Ok(active_time / progress_units)
}

/// Fits `p_φ(M) = w + M·s` by ordinary least squares over observations at
/// two or more distinct values of `M`.
///
/// Estimates are clamped to be non-negative: tiny negative values caused
/// by measurement noise are snapped to zero, so the fit is always a valid
/// model parameterization.
pub fn fit_pivot(observations: &[PivotObservation]) -> Result<PivotFit> {
    if observations.len() < 2 {
        return Err(ModelError::Estimation(format!(
            "need at least 2 pivot observations, got {}",
            observations.len()
        )));
    }
    let distinct = {
        let mut ms: Vec<usize> = observations.iter().map(|o| o.sharers).collect();
        ms.sort_unstable();
        ms.dedup();
        ms.len()
    };
    if distinct < 2 {
        return Err(ModelError::Estimation(
            "pivot observations must cover at least 2 distinct group sizes".into(),
        ));
    }
    let rows = observations.len();
    let mut a = Vec::with_capacity(rows * 2);
    let mut b = Vec::with_capacity(rows);
    for obs in observations {
        if obs.progress_units.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ModelError::Estimation(format!(
                "observation at M={} has non-positive progress",
                obs.sharers
            )));
        }
        a.extend_from_slice(&[1.0, obs.sharers as f64]);
        b.push(obs.p());
    }
    let x = linalg::least_squares(&a, &b, rows, 2)?;
    let rss = linalg::rss(&a, &b, &x, rows, 2);
    // Noise can push an intercept/slope slightly negative; clamp with a
    // tolerance so garbage fits still error out loudly.
    let clamp = |v: f64, what: &str| -> Result<f64> {
        if v >= 0.0 {
            Ok(v)
        } else if v > -1e-6 * b.iter().fold(1.0_f64, |m, x| m.max(x.abs())) {
            Ok(0.0)
        } else {
            Err(ModelError::Estimation(format!(
                "fitted {what} is significantly negative ({v}); profile data inconsistent"
            )))
        }
    };
    Ok(PivotFit {
        w: clamp(x[0], "w")?,
        s: clamp(x[1], "s")?,
        rss,
        observations: rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(m: usize, p: f64) -> PivotObservation {
        PivotObservation {
            sharers: m,
            active_time: p * 100.0,
            progress_units: 100.0,
        }
    }

    #[test]
    fn p_from_profile_basic() {
        assert!((p_from_profile(200.0, 100.0).unwrap() - 2.0).abs() < 1e-12);
        assert!(p_from_profile(1.0, 0.0).is_err());
        assert!(p_from_profile(-1.0, 1.0).is_err());
        assert!(p_from_profile(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn recovers_paper_q6_parameters_exactly() {
        // p_phi(M) = 9.66 + 10.34 M measured at M in {1, 2, 4}.
        let data: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&m| obs(m, 9.66 + 10.34 * m as f64))
            .collect();
        let fit = fit_pivot(&data).unwrap();
        assert!((fit.w - 9.66).abs() < 1e-9, "w={}", fit.w);
        assert!((fit.s - 10.34).abs() < 1e-9, "s={}", fit.s);
        assert!(fit.rss < 1e-15);
        assert_eq!(fit.observations, 3);
    }

    #[test]
    fn tolerates_measurement_noise() {
        let true_w = 5.0;
        let true_s = 2.0;
        let data: Vec<_> = (1..=8)
            .map(|m| {
                let noise = if m % 2 == 0 { 0.02 } else { -0.02 };
                obs(m, true_w + true_s * m as f64 + noise)
            })
            .collect();
        let fit = fit_pivot(&data).unwrap();
        assert!((fit.w - true_w).abs() < 0.1);
        assert!((fit.s - true_s).abs() < 0.02);
        assert!(fit.rss > 0.0);
    }

    #[test]
    fn zero_output_cost_pivot_fits_flat_line() {
        let data: Vec<_> = [1usize, 2, 4, 8].iter().map(|&m| obs(m, 7.5)).collect();
        let fit = fit_pivot(&data).unwrap();
        assert!((fit.w - 7.5).abs() < 1e-9);
        assert!(fit.s.abs() < 1e-9);
    }

    #[test]
    fn insufficient_observations_rejected() {
        assert!(fit_pivot(&[]).is_err());
        assert!(fit_pivot(&[obs(1, 5.0)]).is_err());
        // Two observations at the same M do not separate w from s.
        assert!(fit_pivot(&[obs(3, 5.0), obs(3, 5.1)]).is_err());
    }

    #[test]
    fn significantly_negative_fit_rejected() {
        // Decreasing p with M would imply negative s: inconsistent data.
        let data = vec![obs(1, 10.0), obs(2, 8.0), obs(4, 4.0)];
        assert!(fit_pivot(&data).is_err());
    }

    #[test]
    fn non_positive_progress_rejected() {
        let bad = PivotObservation {
            sharers: 2,
            active_time: 5.0,
            progress_units: 0.0,
        };
        assert!(fit_pivot(&[obs(1, 5.0), bad]).is_err());
    }
}
