//! Stop-&-go operator handling: phase decomposition (paper Section 5.2).
//!
//! A stop-&-go operator (sort, hash build) decouples the
//! production/consumption rates below it from those above it. For
//! modeling, a query containing such operators behaves like a *sequence
//! of sub-queries*: e.g. a sort-based query looks like (1) a sub-query
//! whose root is "sorting runs", then (2) a sub-query whose leaf is an
//! extremely fast "output sorted result" scan. Work sharing applies to
//! each phase independently: inputs can be shared during the consume
//! phase, and the operator's *output* can be shared with queries wanting
//! the same sorted/built result during the emit phase.

use crate::error::Result;
use crate::operator::OperatorSpec;
use crate::plan::{NodeId, PlanSpec};

/// One execution phase of a decomposed query.
#[derive(Debug, Clone)]
pub struct Phase {
    /// The phase's own pipelinable plan.
    pub plan: PlanSpec,
    /// Name of the blocking operator that terminates this phase, or
    /// `None` for the final phase.
    pub boundary: Option<String>,
}

/// Decomposes `plan` into fully-pipelinable phases at every blocking
/// operator, innermost first.
///
/// Each blocking operator `B` contributes:
/// * a phase whose root is `B.consume` — `B`'s input-side work `w` with
///   no output cost (nothing flows downstream while `B` blocks), over
///   `B`'s original subtree (with deeper blocking operators already
///   replaced by their emit leaves), and
/// * in the enclosing phase, a leaf `B.emit` carrying `B`'s output cost
///   toward its consumers.
///
/// The returned phases are in a valid sequential execution order. For a
/// plan with no blocking operators the result is a single phase equal to
/// the input plan.
pub fn decompose(plan: &PlanSpec) -> Result<Vec<Phase>> {
    let mut phases = Vec::new();
    let mut current = plan.clone();
    loop {
        // Find a blocking node whose subtree contains no other blocking
        // node (innermost), in deterministic arena order.
        let candidate = current.node_ids().find(|&id| {
            current.op(id).blocking
                && current
                    .below(id)
                    .map(|below| below.iter().all(|&b| !current.op(b).blocking))
                    .unwrap_or(false)
        });
        let Some(block) = candidate else {
            phases.push(Phase {
                plan: current,
                boundary: None,
            });
            return Ok(phases);
        };
        let (consume, remainder) = split_at(&current, block)?;
        phases.push(Phase {
            plan: consume,
            boundary: Some(current.op(block).name.clone()),
        });
        current = remainder;
    }
}

/// Splits `plan` at blocking node `block` into (consume-phase plan,
/// remainder plan with `block` replaced by an emit leaf).
fn split_at(plan: &PlanSpec, block: NodeId) -> Result<(PlanSpec, PlanSpec)> {
    let block_op = plan.op(block);

    // Consume phase: subtree of `block`, with `block` itself replaced by
    // a consume-only root (keeps w, drops s).
    let consume = {
        let mut b = PlanSpec::new();
        let root = clone_subtree(plan, block, &mut b, &mut |id, op| {
            if id == block {
                OperatorSpec {
                    name: format!("{}.consume", op.name),
                    input_work: op.input_work.clone(),
                    output_cost: vec![],
                    blocking: false,
                }
            } else {
                op.clone()
            }
        });
        b.finish(root)?
    };

    // Remainder: original plan with the subtree at `block` replaced by an
    // emit leaf that carries the blocking operator's output cost.
    let remainder = {
        let emit = OperatorSpec {
            name: format!("{}.emit", block_op.name),
            input_work: vec![0.0],
            output_cost: block_op.output_cost.clone(),
            blocking: false,
        };
        let mut b = PlanSpec::new();
        let root = clone_subtree(plan, plan.root(), &mut b, &mut |id, op| {
            if id == block {
                emit.clone()
            } else {
                op.clone()
            }
        });
        b.finish(root)?
    };
    Ok((consume, remainder))
}

/// Clones the subtree rooted at `node` into builder `b`, mapping each
/// operator through `f`. When `f` returns an operator for the blocked
/// node the original children are dropped if the mapped operator is the
/// emit leaf (detected by empty `input_work` semantics — here we drop
/// children whenever the mapped node's name ends in `.emit`).
fn clone_subtree(
    plan: &PlanSpec,
    node: NodeId,
    b: &mut crate::plan::PlanBuilder,
    f: &mut impl FnMut(NodeId, &OperatorSpec) -> OperatorSpec,
) -> NodeId {
    let mapped = f(node, plan.op(node));
    let drop_children = mapped.name.ends_with(".emit");
    if drop_children {
        b.add_leaf(mapped)
    } else {
        let children: Vec<NodeId> = plan
            .children(node)
            .iter()
            .map(|&c| clone_subtree(plan, c, b, f))
            .collect();
        if children.is_empty() {
            b.add_leaf(mapped)
        } else {
            b.add_node(mapped, children)
        }
    }
}

/// Evaluates work sharing for queries containing stop-&-go operators:
/// the query is a *sequence* of pipelinable phases (Section 5.2), and
/// sharing applies within the single phase holding the pivot.
///
/// The whole-query speedup follows from summing per-phase times. Phases
/// are assumed to process comparable volumes of reference units (exact
/// per-phase volumes would require cardinality estimates; for the
/// share/don't-share decision the uniform assumption preserves the
/// Amdahl structure: a large speedup in a small phase yields a small
/// overall speedup).
#[derive(Debug)]
pub struct PhasedEvaluator {
    phases: Vec<Phase>,
}

impl PhasedEvaluator {
    /// Decomposes `plan` into its pipelinable phases.
    pub fn new(plan: &PlanSpec) -> Result<Self> {
        Ok(Self {
            phases: decompose(plan)?,
        })
    }

    /// The phases, in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Locates the phase containing an operator named `op_name`,
    /// returning `(phase index, node id within that phase)`. Blocking
    /// operators split into `<name>.consume` / `<name>.emit`.
    pub fn find_op(&self, op_name: &str) -> Option<(usize, NodeId)> {
        for (i, phase) in self.phases.iter().enumerate() {
            if let Some(id) = phase
                .plan
                .node_ids()
                .find(|&id| phase.plan.op(id).name == op_name)
            {
                return Some((i, id));
            }
        }
        None
    }

    /// Whole-query sharing speedup when `m` queries share at `pivot`
    /// inside phase `phase_idx`; other phases run unshared.
    pub fn speedup(&self, phase_idx: usize, pivot: NodeId, m: usize, n: f64) -> Result<f64> {
        use crate::sharing::SharingEvaluator;
        if phase_idx >= self.phases.len() {
            return Err(crate::error::ModelError::UnknownNode(phase_idx));
        }
        let mut t_shared = 0.0;
        let mut t_unshared = 0.0;
        for (i, phase) in self.phases.iter().enumerate() {
            // Unshared group rate for this phase: m independent copies.
            let q = crate::query::QueryModel::new(&phase.plan);
            let x_unshared = (m as f64) * (q.peak_rate()).min(n / (m as f64 * q.total_work()));
            t_unshared += 1.0 / x_unshared;
            let x_shared = if i == phase_idx {
                SharingEvaluator::homogeneous(&phase.plan, pivot, m)?.shared_rate(n)?
            } else {
                x_unshared
            };
            t_shared += 1.0 / x_shared;
        }
        Ok(t_unshared / t_shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryModel;

    /// scan -> sort(blocking) -> agg
    fn sort_query() -> PlanSpec {
        PlanSpec::pipeline(vec![
            OperatorSpec::new("scan", vec![8.0], vec![2.0]),
            OperatorSpec::new("sort", vec![5.0], vec![1.5]).blocking(),
            OperatorSpec::new("agg", vec![1.0], vec![]),
        ])
        .unwrap()
    }

    #[test]
    fn pipelinable_plan_is_single_phase() {
        let plan = PlanSpec::pipeline(vec![
            OperatorSpec::new("scan", vec![1.0], vec![1.0]),
            OperatorSpec::new("agg", vec![1.0], vec![]),
        ])
        .unwrap();
        let phases = decompose(&plan).unwrap();
        assert_eq!(phases.len(), 1);
        assert!(phases[0].boundary.is_none());
        assert_eq!(phases[0].plan.len(), 2);
    }

    #[test]
    fn sort_splits_into_two_phases() {
        let phases = decompose(&sort_query()).unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].boundary.as_deref(), Some("sort"));

        // Phase 1: scan -> sort.consume; root has w=5, s=0.
        let p1 = &phases[0].plan;
        assert_eq!(p1.len(), 2);
        let root1 = p1.op(p1.root());
        assert_eq!(root1.name, "sort.consume");
        assert!((root1.p() - 5.0).abs() < 1e-12);
        assert!(!root1.blocking);

        // Phase 2: sort.emit -> agg; leaf carries the sort's s = 1.5.
        let p2 = &phases[1].plan;
        assert_eq!(p2.len(), 2);
        let leaf = p2
            .node_ids()
            .find(|&id| p2.children(id).is_empty())
            .unwrap();
        assert_eq!(p2.op(leaf).name, "sort.emit");
        assert!((p2.op(leaf).p() - 1.5).abs() < 1e-12);
        assert_eq!(p2.op(p2.root()).name, "agg");
    }

    #[test]
    fn phase_rates_are_decoupled() {
        // The consume phase is bottlenecked by the scan (p=10), the emit
        // phase by the emit leaf vs agg — rates differ, as Section 5.2
        // requires.
        let phases = decompose(&sort_query()).unwrap();
        let r1 = QueryModel::new(&phases[0].plan).peak_rate();
        let r2 = QueryModel::new(&phases[1].plan).peak_rate();
        assert!((r1 - 0.1).abs() < 1e-12); // 1 / (8+2)
        assert!((r2 - 1.0 / 1.5).abs() < 1e-12);
        assert!(r2 > r1);
    }

    #[test]
    fn nested_blocking_operators_innermost_first() {
        // scan -> sort1 -> filter -> sort2 -> out: three phases.
        let plan = PlanSpec::pipeline(vec![
            OperatorSpec::new("scan", vec![4.0], vec![1.0]),
            OperatorSpec::new("sort1", vec![3.0], vec![1.0]).blocking(),
            OperatorSpec::new("filter", vec![0.5], vec![0.5]),
            OperatorSpec::new("sort2", vec![2.0], vec![1.0]).blocking(),
            OperatorSpec::new("out", vec![0.1], vec![]),
        ])
        .unwrap();
        let phases = decompose(&plan).unwrap();
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].boundary.as_deref(), Some("sort1"));
        assert_eq!(phases[1].boundary.as_deref(), Some("sort2"));
        assert!(phases[2].boundary.is_none());
        // Middle phase: sort1.emit -> filter -> sort2.consume.
        let names: Vec<_> = phases[1]
            .plan
            .node_ids()
            .map(|id| phases[1].plan.op(id).name.clone())
            .collect();
        assert!(names.contains(&"sort1.emit".to_string()));
        assert!(names.contains(&"sort2.consume".to_string()));
    }

    #[test]
    fn two_blocking_children_both_become_phases() {
        // Merge join: two blocking sorts feeding a merge (Section 5.3.2).
        let mut b = PlanSpec::new();
        let s1 = b.add_leaf(OperatorSpec::new("scanL", vec![4.0], vec![1.0]));
        let sort1 = b.add_node(
            OperatorSpec::new("sortL", vec![3.0], vec![1.0]).blocking(),
            vec![s1],
        );
        let s2 = b.add_leaf(OperatorSpec::new("scanR", vec![6.0], vec![1.0]));
        let sort2 = b.add_node(
            OperatorSpec::new("sortR", vec![3.5], vec![1.0]).blocking(),
            vec![s2],
        );
        let merge = b.add_node(
            OperatorSpec::new("merge", vec![1.0, 1.0], vec![]),
            vec![sort1, sort2],
        );
        let plan = b.finish(merge).unwrap();

        let phases = decompose(&plan).unwrap();
        assert_eq!(phases.len(), 3);
        let boundaries: Vec<_> = phases.iter().filter_map(|p| p.boundary.clone()).collect();
        assert!(boundaries.contains(&"sortL".to_string()));
        assert!(boundaries.contains(&"sortR".to_string()));
        // Final phase merges the two emit leaves.
        let last = &phases[2].plan;
        let leaf_names: Vec<_> = last
            .node_ids()
            .filter(|&id| last.children(id).is_empty())
            .map(|id| last.op(id).name.clone())
            .collect();
        assert_eq!(leaf_names.len(), 2);
        assert!(leaf_names.contains(&"sortL.emit".to_string()));
        assert!(leaf_names.contains(&"sortR.emit".to_string()));
    }

    /// scan -> sort1 -> filter -> sort2 -> out (two nested boundaries).
    fn nested_query() -> PlanSpec {
        PlanSpec::pipeline(vec![
            OperatorSpec::new("scan", vec![4.0], vec![1.0]),
            OperatorSpec::new("sort1", vec![3.0], vec![1.0]).blocking(),
            OperatorSpec::new("filter", vec![0.5], vec![0.5]),
            OperatorSpec::new("sort2", vec![2.0], vec![1.0]).blocking(),
            OperatorSpec::new("out", vec![0.1], vec![]),
        ])
        .unwrap()
    }

    #[test]
    fn decomposition_conserves_total_work() {
        // Stop-&-go accounting: splitting a blocking operator into
        // consume (keeps w, drops s) and emit (keeps s, drops w) must
        // neither create nor destroy work — Σ over phases of u' equals
        // the original plan's u'.
        for plan in [sort_query(), nested_query()] {
            let original = QueryModel::new(&plan).total_work();
            let phases = decompose(&plan).unwrap();
            let split: f64 = phases
                .iter()
                .map(|ph| QueryModel::new(&ph.plan).total_work())
                .sum();
            assert!(
                (split - original).abs() < 1e-9,
                "work not conserved: {split} vs {original}"
            );
        }
    }

    #[test]
    fn consume_keeps_input_work_and_emit_keeps_output_cost() {
        // Every `.consume` root carries exactly the blocking operator's
        // w with no s; every `.emit` leaf carries exactly its s with no
        // w. Nothing about the phase boundary is double-counted.
        let plan = nested_query();
        let w_of = |name: &str| {
            plan.node_ids()
                .find(|&id| plan.op(id).name == name)
                .map(|id| plan.op(id))
                .unwrap()
                .clone()
        };
        for ph in decompose(&plan).unwrap() {
            for id in ph.plan.node_ids() {
                let op = ph.plan.op(id);
                if let Some(base) = op.name.strip_suffix(".consume") {
                    let orig = w_of(base);
                    assert!(op.output_cost.is_empty(), "{} kept s", op.name);
                    assert!(
                        (op.input_work.iter().sum::<f64>() - orig.input_work.iter().sum::<f64>())
                            .abs()
                            < 1e-12,
                        "{} changed w",
                        op.name
                    );
                    assert!(!op.blocking, "{} still blocking", op.name);
                } else if let Some(base) = op.name.strip_suffix(".emit") {
                    let orig = w_of(base);
                    assert!(
                        op.input_work.iter().sum::<f64>() == 0.0,
                        "{} kept w",
                        op.name
                    );
                    assert!(
                        (op.output_cost.iter().sum::<f64>() - orig.output_cost.iter().sum::<f64>())
                            .abs()
                            < 1e-12,
                        "{} changed s",
                        op.name
                    );
                    assert!(ph.plan.children(id).is_empty(), "{} kept children", op.name);
                }
            }
        }
    }

    #[test]
    fn phase_count_is_blocking_count_plus_one() {
        for (plan, blocking) in [
            (sort_query(), 1usize),
            (nested_query(), 2),
            (
                PlanSpec::pipeline(vec![
                    OperatorSpec::new("scan", vec![1.0], vec![1.0]),
                    OperatorSpec::new("agg", vec![1.0], vec![]),
                ])
                .unwrap(),
                0,
            ),
        ] {
            let phases = decompose(&plan).unwrap();
            assert_eq!(phases.len(), blocking + 1);
            // Every non-final phase names its boundary; the final one
            // never does.
            for (i, ph) in phases.iter().enumerate() {
                assert_eq!(ph.boundary.is_none(), i == phases.len() - 1);
            }
        }
    }

    #[test]
    fn phased_evaluator_locates_split_operators() {
        let ev = PhasedEvaluator::new(&sort_query()).unwrap();
        assert_eq!(ev.phases().len(), 2);
        let (phase, _) = ev.find_op("scan").unwrap();
        assert_eq!(phase, 0);
        let (phase, _) = ev.find_op("sort.consume").unwrap();
        assert_eq!(phase, 0);
        let (phase, _) = ev.find_op("sort.emit").unwrap();
        assert_eq!(phase, 1);
        assert!(ev.find_op("nonexistent").is_none());
    }

    #[test]
    fn phased_sharing_follows_amdahl() {
        // Sharing the scan inside the consume phase on one processor:
        // the whole-query speedup must be positive but smaller than the
        // phase-local speedup, because the emit phase is untouched.
        let ev = PhasedEvaluator::new(&sort_query()).unwrap();
        let (phase, scan) = ev.find_op("scan").unwrap();
        let m = 8;
        let whole = ev.speedup(phase, scan, m, 1.0).unwrap();
        let phase_plan = &ev.phases()[phase].plan;
        let local = crate::sharing::SharingEvaluator::homogeneous(phase_plan, scan, m)
            .unwrap()
            .speedup(1.0);
        assert!(whole > 1.0, "sharing still helps: {whole}");
        assert!(whole < local, "Amdahl: whole {whole} < phase-local {local}");
    }

    #[test]
    fn phased_sharing_neutral_for_singleton() {
        let ev = PhasedEvaluator::new(&sort_query()).unwrap();
        let (phase, scan) = ev.find_op("scan").unwrap();
        let z = ev.speedup(phase, scan, 1, 4.0).unwrap();
        assert!((z - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phased_sharing_rejects_bad_phase_index() {
        let ev = PhasedEvaluator::new(&sort_query()).unwrap();
        assert!(ev.speedup(9, NodeId(0), 2, 1.0).is_err());
    }

    #[test]
    fn emit_leaf_can_serve_as_sharing_pivot() {
        // Section 5.2: "queries requesting similar sort operations can
        // share the sort's output values".
        use crate::sharing::SharingEvaluator;
        let phases = decompose(&sort_query()).unwrap();
        let emit_phase = &phases[1].plan;
        let emit = emit_phase
            .node_ids()
            .find(|&id| emit_phase.op(id).name == "sort.emit")
            .unwrap();
        let ev = SharingEvaluator::homogeneous(emit_phase, emit, 4).unwrap();
        // Sharing the emit leaf on one CPU saves its replicated reads.
        assert!(ev.speedup(1.0) >= 1.0);
    }
}
