//! A fast, non-cryptographic hasher for hot integer-keyed maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, whose per-key
//! cost dominates hash-join builds and aggregate group lookups (see
//! Jahangiri et al., *Design Trade-offs for a Robust Dynamic Hybrid
//! Hash Join*, PAPERS.md). This module provides the FxHash algorithm
//! (the multiply-xor hash used by rustc): one wrapping multiply and one
//! rotate per 8-byte word, no per-map random state. It is not
//! HashDoS-resistant — use it only for internal maps keyed by trusted
//! data (join keys, group keys, operator ids), never for keys an
//! adversary controls.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (golden-ratio derived, as in rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: multiply-xor over 8-byte words.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero state, zero allocation).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The shared hot-path map alias: a `HashMap` using [`FxHasher`].
/// Every integer-keyed map on an execution hot path (hash-join build,
/// aggregate group index) goes through this alias so the hasher can be
/// swapped in one place.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` companion to [`FxHashMap`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let hash = |k: i64| {
            let mut h = FxHasher::default();
            h.write_i64(k);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<i64, u32> = FxHashMap::default();
        for k in -1000..1000 {
            m.insert(k, (k * 2) as u32);
        }
        assert_eq!(m.len(), 2000);
        for k in -1000..1000 {
            assert_eq!(m.get(&k), Some(&((k * 2) as u32)));
        }
    }

    #[test]
    fn byte_writes_cover_partial_words() {
        // 0..8..n byte inputs all hash without panicking and differ.
        let mut seen = FxHashSet::default();
        for n in 0..32usize {
            let bytes: Vec<u8> = (0..n as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            seen.insert(h.finish());
        }
        // Lengths 0 and 1 may both touch one word, but the vast
        // majority must be distinct.
        assert!(seen.len() >= 30);
    }

    #[test]
    fn spread_over_sequential_keys() {
        // Sequential keys must not collapse into few buckets: check the
        // low 8 bits (the bucket index for small maps) spread out.
        let mut low_bits = FxHashSet::default();
        for k in 0i64..256 {
            let mut h = FxHasher::default();
            h.write_i64(k);
            low_bits.insert(h.finish() & 0xff);
        }
        assert!(low_bits.len() > 128, "only {} distinct", low_bits.len());
    }
}
