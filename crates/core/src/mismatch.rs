//! Group-level modeling of queries with mismatched rates
//! (paper Section 5.1), independent of any sharing structure.
//!
//! [`crate::sharing::SharingEvaluator`] already applies these rules to
//! its unshared baseline; this module exposes the same math for
//! arbitrary sets of queries, which is useful when reasoning about
//! workload mixes (e.g. the Q1/Q4 mix of the paper's Section 8.2).

pub use crate::sharing::SystemKind;

use crate::error::{ModelError, Result};
use crate::plan::PlanSpec;
use crate::query::QueryModel;

/// A set of queries executing independently (no sharing), possibly with
/// different peak rates.
#[derive(Debug, Clone)]
pub struct UnsharedGroup<'a> {
    queries: Vec<QueryModel<'a>>,
    system: SystemKind,
}

impl<'a> UnsharedGroup<'a> {
    /// Builds a group over the given plans.
    pub fn new(plans: &[&'a PlanSpec]) -> Result<Self> {
        if plans.is_empty() {
            return Err(ModelError::EmptyGroup);
        }
        Ok(Self {
            queries: plans.iter().map(|p| QueryModel::new(p)).collect(),
            system: SystemKind::Closed,
        })
    }

    /// Selects the queueing regime (default: closed).
    #[must_use]
    pub fn with_system(mut self, system: SystemKind) -> Self {
        self.system = system;
        self
    }

    /// Number of queries in the group.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the group is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Group peak rate `r_unshared`:
    /// * closed — `M ·` harmonic mean of member peak rates
    ///   (`M² / Σ_m p_max(m)` divided by M, i.e. `M / Σ_m p_max(m)` per
    ///   query, times `M` queries);
    /// * open — all members throttled to the slowest,
    ///   `M / max_m p_max(m)`.
    pub fn peak_rate(&self) -> f64 {
        let m = self.queries.len() as f64;
        match self.system {
            SystemKind::Closed => {
                let sum_pmax: f64 = self.queries.iter().map(|q| q.p_max()).sum();
                m * (m / sum_pmax)
            }
            SystemKind::Open => {
                let max_pmax = self
                    .queries
                    .iter()
                    .map(|q| q.p_max())
                    .fold(0.0_f64, f64::max);
                m / max_pmax
            }
        }
    }

    /// Group peak utilization `u_unshared`: each member throttled by its
    /// own `p_max` (closed) or by the group max (open).
    pub fn peak_utilization(&self) -> f64 {
        match self.system {
            SystemKind::Closed => self
                .queries
                .iter()
                .map(|q| q.total_work() / q.p_max())
                .sum(),
            SystemKind::Open => {
                let max_pmax = self
                    .queries
                    .iter()
                    .map(|q| q.p_max())
                    .fold(0.0_f64, f64::max);
                self.queries.iter().map(|q| q.total_work()).sum::<f64>() / max_pmax
            }
        }
    }

    /// Group rate of forward progress with `n` processors:
    /// `x = r_unshared · min(1, n / u_unshared)`.
    pub fn rate(&self, n: f64) -> Result<f64> {
        if n.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !n.is_finite() {
            return Err(ModelError::InvalidProcessors(n));
        }
        Ok(self.peak_rate() * (n / self.peak_utilization()).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorSpec;

    fn pipeline(costs: &[f64]) -> PlanSpec {
        PlanSpec::pipeline(
            costs
                .iter()
                .enumerate()
                .map(|(i, &c)| OperatorSpec::new(format!("op{i}"), vec![c], vec![]))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn homogeneous_group_matches_section_4_2() {
        // M identical queries: x = M * min(1/p_max, n / (M u')).
        let q = pipeline(&[10.0, 5.0]);
        let group = UnsharedGroup::new(&[&q, &q, &q, &q]).unwrap();
        // r = 4 / 10, u = 4 * 1.5
        assert!((group.peak_rate() - 0.4).abs() < 1e-12);
        assert!((group.peak_utilization() - 6.0).abs() < 1e-12);
        // Saturated region: n = 3 < u = 6 -> x = 0.4 * 3/6 = 0.2.
        assert!((group.rate(3.0).unwrap() - 0.2).abs() < 1e-12);
        // Unsaturated: n = 12 -> x = 0.4.
        assert!((group.rate(12.0).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn closed_system_lets_fast_queries_raise_throughput() {
        let fast = pipeline(&[2.0]);
        let slow = pipeline(&[20.0]);
        let closed = UnsharedGroup::new(&[&fast, &slow]).unwrap();
        let open = UnsharedGroup::new(&[&fast, &slow])
            .unwrap()
            .with_system(SystemKind::Open);
        // Closed: 2 * harmonic-mean(1/2, 1/20) = 2 * 2/22.
        assert!((closed.peak_rate() - 4.0 / 22.0).abs() < 1e-12);
        // Open: both at the slow rate, 2/20.
        assert!((open.peak_rate() - 0.1).abs() < 1e-12);
        assert!(closed.peak_rate() > open.peak_rate());
    }

    #[test]
    fn regimes_agree_for_identical_members() {
        let q = pipeline(&[10.0, 10.0, 5.0]);
        let closed = UnsharedGroup::new(&[&q, &q, &q]).unwrap();
        let open = UnsharedGroup::new(&[&q, &q, &q])
            .unwrap()
            .with_system(SystemKind::Open);
        for n in [1.0, 2.0, 8.0, 32.0] {
            assert!((closed.rate(n).unwrap() - open.rate(n).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_group_rejected() {
        assert!(matches!(
            UnsharedGroup::new(&[]),
            Err(ModelError::EmptyGroup)
        ));
    }

    #[test]
    fn invalid_n_rejected() {
        let q = pipeline(&[1.0]);
        let g = UnsharedGroup::new(&[&q]).unwrap();
        assert!(g.rate(0.0).is_err());
        assert!(g.rate(f64::NAN).is_err());
    }
}
