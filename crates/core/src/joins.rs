//! Modeling the three join families (paper Section 5.3).
//!
//! * **Nested-loop join** is fully pipelinable: a single operator with
//!   two input streams, one usually far more expensive than the other.
//! * **Merge join** is three operations: two (blocking) sorts plus a
//!   pipelinable merge. If an input is already sorted its sort vanishes.
//! * **Hash join** is two operations: a blocking build and a pipelinable
//!   probe. A symmetric/pipelined hash join collapses back to the simple
//!   single-operator model.
//!
//! These builders produce [`PlanSpec`]s with appropriate `blocking`
//! flags; feed them to [`crate::phases::decompose`] for phase-wise
//! evaluation.

use crate::error::Result;
use crate::operator::OperatorSpec;
use crate::plan::{NodeId, PlanSpec};

/// Cost parameters for one side of a join.
#[derive(Debug, Clone, Copy)]
pub struct JoinSideCost {
    /// `w`: work per unit of forward progress to consume this input.
    pub work: f64,
}

/// Builds a fully-pipelinable nested-loop join plan over two input
/// plans. Returns the combined plan and the join's node id.
///
/// `outer_w`/`inner_w` are the join's per-unit-progress costs of
/// consuming each input; `output_s` the cost of emitting to the (single)
/// consumer.
pub fn nested_loop_join(
    left: &PlanSpec,
    right: &PlanSpec,
    outer_w: f64,
    inner_w: f64,
    output_s: f64,
) -> Result<(PlanSpec, NodeId)> {
    let mut b = PlanSpec::new();
    let l = graft(left, left.root(), &mut b);
    let r = graft(right, right.root(), &mut b);
    let join = b.add_node(
        OperatorSpec::try_new("nlj", vec![outer_w, inner_w], vec![output_s])?,
        vec![l, r],
    );
    b.finish(join).map(|plan| (plan, join))
}

/// Builds a hash join: blocking `hj.build` over the build side, then a
/// pipelinable `hj.probe` consuming the probe side and the built table.
/// Returns the plan and the probe node id (the shareable pivot for
/// sharing the whole join result).
pub fn hash_join(
    build: &PlanSpec,
    probe: &PlanSpec,
    build_w: f64,
    probe_w: f64,
    output_s: f64,
) -> Result<(PlanSpec, NodeId)> {
    let mut b = PlanSpec::new();
    let build_in = graft(build, build.root(), &mut b);
    let built = b.add_node(
        OperatorSpec::try_new("hj.build", vec![build_w], vec![0.0])?.blocking(),
        vec![build_in],
    );
    let probe_in = graft(probe, probe.root(), &mut b);
    let joined = b.add_node(
        OperatorSpec::try_new("hj.probe", vec![probe_w, 0.0], vec![output_s])?,
        vec![probe_in, built],
    );
    b.finish(joined).map(|plan| (plan, joined))
}

/// Builds a symmetric (pipelined) hash join: a single non-blocking
/// operator, per Section 5.3.3's discussion of symmetric hash joins.
pub fn symmetric_hash_join(
    left: &PlanSpec,
    right: &PlanSpec,
    left_w: f64,
    right_w: f64,
    output_s: f64,
) -> Result<(PlanSpec, NodeId)> {
    let mut b = PlanSpec::new();
    let l = graft(left, left.root(), &mut b);
    let r = graft(right, right.root(), &mut b);
    let join = b.add_node(
        OperatorSpec::try_new("shj", vec![left_w, right_w], vec![output_s])?,
        vec![l, r],
    );
    b.finish(join).map(|plan| (plan, join))
}

/// Builds a merge join: blocking sorts over each unsorted input plus a
/// pipelinable merge. `left_sorted` / `right_sorted` skip the respective
/// sort (Section 5.3.2: "if any input is already sorted then the
/// corresponding sort operation is unnecessary").
#[allow(clippy::too_many_arguments)]
pub fn merge_join(
    left: &PlanSpec,
    right: &PlanSpec,
    sort_w: f64,
    sort_emit_s: f64,
    merge_w: f64,
    output_s: f64,
    left_sorted: bool,
    right_sorted: bool,
) -> Result<(PlanSpec, NodeId)> {
    let mut b = PlanSpec::new();
    let side = |plan: &PlanSpec, sorted: bool, name: &str, b: &mut crate::plan::PlanBuilder| {
        let input = graft(plan, plan.root(), b);
        if sorted {
            Ok::<NodeId, crate::error::ModelError>(input)
        } else {
            Ok(b.add_node(
                OperatorSpec::try_new(name, vec![sort_w], vec![sort_emit_s])?.blocking(),
                vec![input],
            ))
        }
    };
    let l = side(left, left_sorted, "mj.sortL", &mut b)?;
    let r = side(right, right_sorted, "mj.sortR", &mut b)?;
    let merge = b.add_node(
        OperatorSpec::try_new("mj.merge", vec![merge_w, merge_w], vec![output_s])?,
        vec![l, r],
    );
    b.finish(merge).map(|plan| (plan, merge))
}

/// Copies the subtree of `src` rooted at `node` into builder `b`.
fn graft(src: &PlanSpec, node: NodeId, b: &mut crate::plan::PlanBuilder) -> NodeId {
    let children: Vec<NodeId> = src
        .children(node)
        .iter()
        .map(|&c| graft(src, c, b))
        .collect();
    if children.is_empty() {
        b.add_leaf(src.op(node).clone())
    } else {
        b.add_node(src.op(node).clone(), children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::decompose;

    fn scan(name: &str, w: f64, s: f64) -> PlanSpec {
        PlanSpec::pipeline(vec![OperatorSpec::new(name, vec![w], vec![s])]).unwrap()
    }

    #[test]
    fn nlj_is_single_phase() {
        let (plan, join) =
            nested_loop_join(&scan("l", 4.0, 1.0), &scan("r", 2.0, 1.0), 1.0, 6.0, 0.5).unwrap();
        assert_eq!(plan.len(), 3);
        assert!((plan.op(join).p() - 7.5).abs() < 1e-12);
        assert_eq!(decompose(&plan).unwrap().len(), 1);
    }

    #[test]
    fn hash_join_decomposes_into_build_and_probe_phases() {
        let (plan, probe) = hash_join(
            &scan("build", 3.0, 1.0),
            &scan("probe", 5.0, 1.0),
            2.0,
            1.5,
            0.5,
        )
        .unwrap();
        assert_eq!(plan.op(probe).name, "hj.probe");
        let phases = decompose(&plan).unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].boundary.as_deref(), Some("hj.build"));
        // Build phase contains the build-side scan and hj.build.consume.
        let names: Vec<_> = phases[0]
            .plan
            .node_ids()
            .map(|id| phases[0].plan.op(id).name.clone())
            .collect();
        assert!(names.iter().any(|n| n == "build"));
        assert!(names.iter().any(|n| n == "hj.build.consume"));
        // Probe phase does NOT contain the build-side scan anymore.
        let names2: Vec<_> = phases[1]
            .plan
            .node_ids()
            .map(|id| phases[1].plan.op(id).name.clone())
            .collect();
        assert!(!names2.iter().any(|n| n == "build"));
        assert!(names2.iter().any(|n| n == "hj.probe"));
    }

    #[test]
    fn symmetric_hash_join_is_pipelinable() {
        let (plan, _) =
            symmetric_hash_join(&scan("l", 4.0, 1.0), &scan("r", 2.0, 1.0), 1.0, 1.0, 0.5).unwrap();
        assert_eq!(decompose(&plan).unwrap().len(), 1);
    }

    #[test]
    fn merge_join_three_phases_when_both_unsorted() {
        let (plan, _) = merge_join(
            &scan("l", 4.0, 1.0),
            &scan("r", 2.0, 1.0),
            3.0,
            0.5,
            1.0,
            0.5,
            false,
            false,
        )
        .unwrap();
        assert_eq!(decompose(&plan).unwrap().len(), 3);
    }

    #[test]
    fn merge_join_pipelines_with_sorted_inputs() {
        let (plan, _) = merge_join(
            &scan("l", 4.0, 1.0),
            &scan("r", 2.0, 1.0),
            3.0,
            0.5,
            1.0,
            0.5,
            true,
            true,
        )
        .unwrap();
        // Section 5.3.2: both inputs sorted -> merge join fully pipelined.
        assert_eq!(decompose(&plan).unwrap().len(), 1);
    }

    #[test]
    fn merge_join_one_sorted_input_two_phases() {
        let (plan, _) = merge_join(
            &scan("l", 4.0, 1.0),
            &scan("r", 2.0, 1.0),
            3.0,
            0.5,
            1.0,
            0.5,
            true,
            false,
        )
        .unwrap();
        assert_eq!(decompose(&plan).unwrap().len(), 2);
    }

    #[test]
    fn join_heavy_sharing_is_always_beneficial_like_q4_q13() {
        // Join-heavy profile: most work in scans + join, tiny per-sharer
        // output cost at the pivot (paper Section 3.3's explanation).
        use crate::sharing::SharingEvaluator;
        let (plan, join) = nested_loop_join(
            &scan("orders", 12.0, 1.0),
            &scan("lineitem", 30.0, 1.0),
            1.0,
            2.0,
            0.05, // insignificant per-sharer cost at the pivot
        )
        .unwrap();
        for m in [4usize, 16, 48] {
            for n in [1.0, 2.0, 8.0, 32.0] {
                let ev = SharingEvaluator::homogeneous(&plan, join, m).unwrap();
                assert!(
                    ev.speedup(n) >= 1.0,
                    "join-heavy sharing should always win: m={m} n={n} z={}",
                    ev.speedup(n)
                );
            }
        }
    }
}
