//! Little's Law utilities for closed systems (paper Section 1.2).
//!
//! In a closed system with `N` in-flight queries, throughput `X` and
//! per-query processing rate `R` obey `X = N · R`. The startling
//! implication for work sharing: *throttling queries lowers throughput
//! even if total work is reduced* — the model must decide whether sharing
//! lowers the average per-query rate enough to offset the saved work.

/// Throughput of a closed system: `X = N · R`.
///
/// `n_queries` is the multiprogramming level (clients), `rate` the
/// average per-query rate of forward progress.
pub fn throughput(n_queries: usize, rate: f64) -> f64 {
    n_queries as f64 * rate
}

/// Per-query rate implied by an observed throughput: `R = X / N`.
pub fn per_query_rate(throughput: f64, n_queries: usize) -> f64 {
    assert!(n_queries > 0, "closed system needs at least one query");
    throughput / n_queries as f64
}

/// Average response time implied by Little's Law: `R_time = N / X`.
/// (Using the queueing-theory form `N = X · W`.)
pub fn response_time(n_queries: usize, throughput: f64) -> f64 {
    n_queries as f64 / throughput
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_population() {
        assert_eq!(throughput(10, 0.5), 5.0);
        assert_eq!(throughput(0, 0.5), 0.0);
    }

    #[test]
    fn rate_and_throughput_are_inverses() {
        let x = throughput(8, 0.25);
        assert!((per_query_rate(x, 8) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn response_time_round_trip() {
        // 20 clients, throughput 4 queries/sec => 5 sec per query.
        assert!((response_time(20, 4.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn per_query_rate_rejects_zero_population() {
        per_query_rate(1.0, 0);
    }

    #[test]
    fn identities_hold_across_population_and_rate_grid() {
        // N = X · W and R = X / N must hold simultaneously for any
        // (N, R): the three helpers are one law, not three formulas.
        for &n in &[1usize, 2, 5, 20, 100, 4096] {
            for &r in &[1e-3, 0.25, 1.0, 7.5] {
                let x = throughput(n, r);
                let w = response_time(n, x);
                assert!(
                    (x * w - n as f64).abs() < 1e-9,
                    "N = X·W failed: n={n} r={r}"
                );
                assert!(
                    (per_query_rate(x, n) - r).abs() < 1e-12,
                    "R = X/N failed: n={n} r={r}"
                );
                // W = 1/R in a closed system with homogeneous queries.
                assert!((w - 1.0 / r).abs() < 1e-9, "W = 1/R failed: n={n} r={r}");
            }
        }
    }

    #[test]
    fn throttling_rate_lowers_throughput_proportionally() {
        // The work-sharing implication (Section 1.2): throttling every
        // query to half its rate halves system throughput at fixed N,
        // regardless of any work saved.
        let x_full = throughput(16, 0.5);
        let x_throttled = throughput(16, 0.25);
        assert!((x_throttled / x_full - 0.5).abs() < 1e-12);
        // So sharing must save enough work to beat the throttle: a
        // shared group running at 60% rate with 50% of the work is a
        // net win only through the rate it actually achieves.
        assert!(throughput(16, 0.3) > x_throttled);
    }
}
