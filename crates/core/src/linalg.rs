//! Minimal dense linear algebra for parameter estimation: least-squares
//! via normal equations and Gaussian elimination with partial pivoting.
//!
//! The paper (Section 3.1) extracts per-operator work parameters by
//! "solving a system of linear equations to divide up the active time of
//! each operator among the different nodes of the query plan"; this
//! module provides that solver without external dependencies.

use crate::error::{ModelError, Result};

/// Solves the square system `A x = b` by Gaussian elimination with
/// partial pivoting. `a` is row-major, `n x n`.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>> {
    if a.len() != n * n || b.len() != n {
        return Err(ModelError::Estimation(format!(
            "dimension mismatch: a={} b={} n={n}",
            a.len(),
            b.len()
        )));
    }
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot: pick the row with the largest |entry| in col.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i * n + col]
                    .abs()
                    .partial_cmp(&m[j * n + col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        let pivot = m[pivot_row * n + col];
        if pivot.abs() < 1e-12 {
            return Err(ModelError::Estimation(format!(
                "matrix is singular or ill-conditioned at column {col}"
            )));
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        for row in (col + 1)..n {
            let factor = m[row * n + col] / m[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Ok(x)
}

/// Ordinary least squares: finds `x` minimizing `‖A x − b‖₂` where `A` is
/// `rows x cols` (row-major) with `rows ≥ cols`, via the normal equations
/// `AᵀA x = Aᵀb`.
pub fn least_squares(a: &[f64], b: &[f64], rows: usize, cols: usize) -> Result<Vec<f64>> {
    if a.len() != rows * cols || b.len() != rows {
        return Err(ModelError::Estimation(format!(
            "dimension mismatch: a={} b={} rows={rows} cols={cols}",
            a.len(),
            b.len()
        )));
    }
    if rows < cols {
        return Err(ModelError::Estimation(format!(
            "underdetermined system: {rows} observations for {cols} unknowns"
        )));
    }
    // AtA (cols x cols) and Atb (cols).
    let mut ata = vec![0.0; cols * cols];
    let mut atb = vec![0.0; cols];
    for r in 0..rows {
        for i in 0..cols {
            let ari = a[r * cols + i];
            atb[i] += ari * b[r];
            for j in 0..cols {
                ata[i * cols + j] += ari * a[r * cols + j];
            }
        }
    }
    solve(&ata, &atb, cols)
}

/// Residual sum of squares of a candidate solution.
pub fn rss(a: &[f64], b: &[f64], x: &[f64], rows: usize, cols: usize) -> f64 {
    (0..rows)
        .map(|r| {
            let pred: f64 = (0..cols).map(|c| a[r * cols + c] * x[c]).sum();
            let e = pred - b[r];
            e * e
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [3.0, -2.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn solves_requiring_pivoting() {
        // First pivot is zero: requires row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let b = [2.0, 5.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3() {
        // x=1, y=2, z=3 under a well-conditioned matrix.
        let a = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let x_true = [1.0, 2.0, 3.0];
        let b: Vec<f64> = (0..3)
            .map(|r| (0..3).map(|c| a[r * 3 + c] * x_true[c]).sum())
            .collect();
        let x = solve(&a, &b, 3).unwrap();
        for (got, want) in x.iter().zip(x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = [1.0, 2.0, 2.0, 4.0];
        let b = [1.0, 2.0];
        assert!(solve(&a, &b, 2).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        assert!(solve(&[1.0], &[1.0, 2.0], 2).is_err());
        assert!(least_squares(&[1.0, 2.0], &[1.0], 2, 2).is_err());
    }

    #[test]
    fn least_squares_exact_fit() {
        // y = w + m*s with (w, s) = (9.66, 10.34): the paper's pivot law.
        let ms = [1.0, 2.0, 4.0, 8.0];
        let a: Vec<f64> = ms.iter().flat_map(|&m| [1.0, m]).collect();
        let b: Vec<f64> = ms.iter().map(|&m| 9.66 + 10.34 * m).collect();
        let x = least_squares(&a, &b, 4, 2).unwrap();
        assert!((x[0] - 9.66).abs() < 1e-9);
        assert!((x[1] - 10.34).abs() < 1e-9);
        assert!(rss(&a, &b, &x, 4, 2) < 1e-15);
    }

    #[test]
    fn least_squares_noisy_fit_recovers_trend() {
        // Add symmetric noise: OLS should land near the true slope.
        let ms = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let noise = [0.05, -0.05, 0.05, -0.05, 0.05, -0.05];
        let a: Vec<f64> = ms.iter().flat_map(|&m| [1.0, m]).collect();
        let b: Vec<f64> = ms
            .iter()
            .zip(noise)
            .map(|(&m, e)| 2.0 + 3.0 * m + e)
            .collect();
        let x = least_squares(&a, &b, 6, 2).unwrap();
        assert!((x[0] - 2.0).abs() < 0.1);
        assert!((x[1] - 3.0).abs() < 0.05);
    }

    #[test]
    fn underdetermined_rejected() {
        let a = [1.0, 2.0];
        let b = [3.0];
        assert!(least_squares(&a, &b, 1, 2).is_err());
    }
}
