//! Single-query model quantities: `p_max`, `r`, `u`, `u'`, `x(n)`
//! (paper Sections 4.1.2–4.1.3).

use crate::error::{ModelError, Result};
use crate::plan::PlanSpec;

/// Model view of one query: peak rate, utilization, and achievable rate
/// under limited processors.
///
/// Due to the tight coupling of pipelined operators, all operators in a
/// plan proceed at the rate of the slowest (bottleneck) operator; the
/// peak rate of forward progress is `r = 1 / p_max`.
#[derive(Debug, Clone)]
pub struct QueryModel<'a> {
    plan: &'a PlanSpec,
}

impl<'a> QueryModel<'a> {
    /// Wraps a plan for model evaluation.
    pub fn new(plan: &'a PlanSpec) -> Self {
        Self { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &'a PlanSpec {
        self.plan
    }

    /// `p_max`: the largest per-unit-progress work among all operators.
    pub fn p_max(&self) -> f64 {
        self.plan
            .node_ids()
            .map(|id| self.plan.op(id).p())
            .fold(0.0_f64, f64::max)
    }

    /// `r = 1 / p_max`: peak rate of forward progress (paper 4.1.2).
    ///
    /// Returns infinity for a degenerate plan whose operators are all
    /// zero-cost.
    pub fn peak_rate(&self) -> f64 {
        1.0 / self.p_max()
    }

    /// `u' = Σ_k p_k`: total work per unit of forward progress.
    pub fn total_work(&self) -> f64 {
        self.plan.node_ids().map(|id| self.plan.op(id).p()).sum()
    }

    /// `u = u' / p_max`: maximum processor utilization of the query
    /// (can exceed 1 — it reflects available pipeline parallelism).
    pub fn peak_utilization(&self) -> f64 {
        self.total_work() / self.p_max()
    }

    /// `x(n) = min(1/p_max, n/u')`: the true rate of forward progress
    /// given `n` available processors (paper 4.1.3). If `u > n` the
    /// system time-shares operators, uniformly scaling the rate by `n/u`.
    pub fn rate(&self, n: f64) -> Result<f64> {
        if n.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !n.is_finite() {
            return Err(ModelError::InvalidProcessors(n));
        }
        Ok((1.0 / self.p_max()).min(n / self.total_work()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorSpec;

    /// Paper Section 4.4 Q6 plan: scan (w=9.66, s=10.34) -> agg (p=0.97).
    fn q6() -> PlanSpec {
        PlanSpec::pipeline(vec![
            OperatorSpec::new("scan", vec![9.66], vec![10.34]),
            OperatorSpec::new("agg", vec![0.97], vec![]),
        ])
        .unwrap()
    }

    /// Section 6 synthetic query: p=10 / (w=6, s=1) / p=10.
    fn synthetic() -> PlanSpec {
        PlanSpec::pipeline(vec![
            OperatorSpec::new("bottom", vec![10.0], vec![]),
            OperatorSpec::new("pivot", vec![6.0], vec![1.0]),
            OperatorSpec::new("top", vec![10.0], vec![]),
        ])
        .unwrap()
    }

    #[test]
    fn q6_paper_anchor_values() {
        let plan = q6();
        let q = QueryModel::new(&plan);
        // p_max = p_scan = 20, u' = 20.97 ≈ 21 (paper rounds to 21).
        assert!((q.p_max() - 20.0).abs() < 1e-9);
        assert!((q.total_work() - 20.97).abs() < 1e-9);
        assert!((q.peak_rate() - 0.05).abs() < 1e-12);
        assert!((q.peak_utilization() - 20.97 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_paper_anchor_utilization() {
        // Paper Section 6.1: "each query requires 2.7 processors for peak
        // throughput": u' = 10 + 7 + 10 = 27, p_max = 10, u = 2.7.
        let plan = synthetic();
        let q = QueryModel::new(&plan);
        assert!((q.total_work() - 27.0).abs() < 1e-12);
        assert!((q.p_max() - 10.0).abs() < 1e-12);
        assert!((q.peak_utilization() - 2.7).abs() < 1e-12);
    }

    #[test]
    fn rate_saturates_at_peak() {
        let plan = synthetic();
        let q = QueryModel::new(&plan);
        // With plenty of processors, rate = r = 1/10.
        assert!((q.rate(32.0).unwrap() - 0.1).abs() < 1e-12);
        // With one processor, rate = 1/u' = 1/27.
        assert!((q.rate(1.0).unwrap() - 1.0 / 27.0).abs() < 1e-12);
        // Exactly u processors reach peak rate.
        assert!((q.rate(2.7).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rate_monotone_in_n() {
        let plan = q6();
        let q = QueryModel::new(&plan);
        let mut prev = 0.0;
        for n in [0.5, 1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let x = q.rate(n).unwrap();
            assert!(x >= prev - 1e-15, "rate must be non-decreasing in n");
            prev = x;
        }
    }

    #[test]
    fn invalid_processors_rejected() {
        let plan = q6();
        let q = QueryModel::new(&plan);
        assert!(q.rate(0.0).is_err());
        assert!(q.rate(-1.0).is_err());
        assert!(q.rate(f64::NAN).is_err());
        assert!(q.rate(f64::INFINITY).is_err());
    }

    #[test]
    fn fractional_processors_allowed_for_contention_models() {
        let plan = q6();
        let q = QueryModel::new(&plan);
        // n^k contention adjustment produces fractional n; must work.
        assert!(q.rate(1.7).unwrap() > 0.0);
    }
}
