//! Shared-hardware contention model (paper Section 4.1.4).
//!
//! CMPs share caches, memory bandwidth and functional units; as more
//! contexts are active, contention reduces effective processing power.
//! The paper models this by assuming only `n^k` processors are
//! effectively available, `0 < k ≤ 1`, with `k` measured empirically per
//! hardware/workload (and possibly per sharing mode).

use crate::error::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// Hardware description used to translate nominal context counts into
/// effective processing power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareModel {
    /// Nominal number of hardware contexts (`n`).
    pub contexts: u32,
    /// Contention exponent `k` for *unshared* execution (`0 < k ≤ 1`;
    /// `k = 1` means no contention, as the paper assumes for its Q6
    /// worked example).
    pub k_unshared: f64,
    /// Contention exponent for *shared* execution. The paper notes `k`
    /// may depend on "whether the system applies work sharing"; sharing
    /// typically touches less aggregate data, so `k_shared ≥ k_unshared`
    /// is common.
    pub k_shared: f64,
}

impl HardwareModel {
    /// A contention-free machine with `contexts` hardware contexts
    /// (`k = 1`), matching the paper's validated Q6 model.
    pub fn ideal(contexts: u32) -> Self {
        Self {
            contexts,
            k_unshared: 1.0,
            k_shared: 1.0,
        }
    }

    /// A machine with a single contention exponent for both modes.
    pub fn with_contention(contexts: u32, k: f64) -> Result<Self> {
        Self {
            contexts,
            k_unshared: k,
            k_shared: k,
        }
        .validated()
    }

    /// A machine with distinct exponents per execution mode.
    pub fn with_mode_contention(contexts: u32, k_unshared: f64, k_shared: f64) -> Result<Self> {
        Self {
            contexts,
            k_unshared,
            k_shared,
        }
        .validated()
    }

    fn validated(self) -> Result<Self> {
        for k in [self.k_unshared, self.k_shared] {
            if !(k > 0.0 && k <= 1.0) {
                return Err(ModelError::InvalidCost {
                    what: "contention exponent k".into(),
                    value: k,
                });
            }
        }
        if self.contexts == 0 {
            return Err(ModelError::InvalidProcessors(0.0));
        }
        Ok(self)
    }

    /// Effective processors for unshared execution: `n^k_unshared`.
    pub fn effective_unshared(&self) -> f64 {
        (self.contexts as f64).powf(self.k_unshared)
    }

    /// Effective processors for shared execution: `n^k_shared`.
    pub fn effective_shared(&self) -> f64 {
        (self.contexts as f64).powf(self.k_shared)
    }
}

/// Estimates the contention exponent `k` from measured saturated
/// throughputs at different context counts: under saturation
/// `x(n) ∝ n^k`, so `ln x = k·ln n + c` and `k` is the slope of a
/// log-log least-squares fit ("k is easy to measure empirically",
/// paper Section 4.1.4). The result is clamped into `(0, 1]`.
pub fn estimate_k(samples: &[(u32, f64)]) -> Result<f64> {
    let usable: Vec<(f64, f64)> = samples
        .iter()
        .filter(|&&(n, x)| n >= 1 && x > 0.0 && x.is_finite())
        .map(|&(n, x)| ((n as f64).ln(), x.ln()))
        .collect();
    if usable.len() < 2 {
        return Err(ModelError::Estimation(format!(
            "need at least 2 valid (contexts, throughput) samples, got {}",
            usable.len()
        )));
    }
    let distinct_n = {
        let mut ns: Vec<u64> = usable.iter().map(|(ln_n, _)| ln_n.to_bits()).collect();
        ns.sort_unstable();
        ns.dedup();
        ns.len()
    };
    if distinct_n < 2 {
        return Err(ModelError::Estimation(
            "samples must cover at least 2 distinct context counts".into(),
        ));
    }
    let rows = usable.len();
    let a: Vec<f64> = usable.iter().flat_map(|&(ln_n, _)| [1.0, ln_n]).collect();
    let b: Vec<f64> = usable.iter().map(|&(_, ln_x)| ln_x).collect();
    let x = crate::linalg::least_squares(&a, &b, rows, 2)?;
    Ok(x[1].clamp(f64::MIN_POSITIVE, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_k_recovers_exact_exponent() {
        for true_k in [0.5, 0.75, 0.9, 1.0] {
            let samples: Vec<(u32, f64)> = [1u32, 2, 4, 8, 16, 32]
                .iter()
                .map(|&n| (n, 3.0 * (n as f64).powf(true_k)))
                .collect();
            let k = estimate_k(&samples).unwrap();
            assert!((k - true_k).abs() < 1e-9, "k={k} vs {true_k}");
        }
    }

    #[test]
    fn estimate_k_clamps_superlinear_to_one() {
        let samples: Vec<(u32, f64)> = [1u32, 2, 4]
            .iter()
            .map(|&n| (n, (n as f64).powf(1.4)))
            .collect();
        assert_eq!(estimate_k(&samples).unwrap(), 1.0);
    }

    #[test]
    fn estimate_k_tolerates_noise() {
        let samples: Vec<(u32, f64)> = [1u32, 2, 4, 8, 16]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let noise = if i % 2 == 0 { 1.03 } else { 0.97 };
                (n, (n as f64).powf(0.8) * noise)
            })
            .collect();
        let k = estimate_k(&samples).unwrap();
        assert!((k - 0.8).abs() < 0.05, "k={k}");
    }

    #[test]
    fn estimate_k_rejects_degenerate_inputs() {
        assert!(estimate_k(&[]).is_err());
        assert!(estimate_k(&[(4, 2.0)]).is_err());
        assert!(estimate_k(&[(4, 2.0), (4, 2.1)]).is_err());
        assert!(estimate_k(&[(1, 0.0), (2, -1.0)]).is_err());
    }

    #[test]
    fn ideal_hardware_is_identity() {
        let hw = HardwareModel::ideal(32);
        assert!((hw.effective_shared() - 32.0).abs() < 1e-12);
        assert!((hw.effective_unshared() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn contention_shrinks_effective_processors() {
        let hw = HardwareModel::with_contention(32, 0.8).unwrap();
        let eff = hw.effective_unshared();
        assert!(eff < 32.0 && eff > 1.0);
        assert!((eff - 32f64.powf(0.8)).abs() < 1e-12);
    }

    #[test]
    fn one_context_unaffected_by_contention() {
        let hw = HardwareModel::with_contention(1, 0.5).unwrap();
        assert!((hw.effective_shared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_specific_exponents() {
        let hw = HardwareModel::with_mode_contention(16, 0.7, 0.9).unwrap();
        assert!(hw.effective_shared() > hw.effective_unshared());
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(HardwareModel::with_contention(8, 0.0).is_err());
        assert!(HardwareModel::with_contention(8, 1.5).is_err());
        assert!(HardwareModel::with_contention(8, f64::NAN).is_err());
        assert!(HardwareModel::with_contention(0, 0.9).is_err());
    }
}
