//! # cordoba-core — the work-sharing vs. parallelism analytical model
//!
//! This crate implements the analytical model from *"To Share or Not To
//! Share?"* (Johnson et al., VLDB 2007). The model predicts whether
//! sharing a common sub-plan among `m` concurrent queries on `n`
//! processors is a net win, capturing the trade-off between
//!
//! * **eliminated redundant work** (the shared sub-plan executes once), and
//! * **serialization at the pivot operator** (the root of the shared
//!   sub-plan must emit results to every consumer, which throttles all
//!   sharers to a common, possibly slower, rate).
//!
//! ## Model vocabulary (paper Table 1)
//!
//! | Term | Meaning | Here |
//! |------|---------|------|
//! | `w`  | work an operator performs per unit of forward progress (per input stream) | [`OperatorSpec::input_work`] |
//! | `s`  | work to output a unit of forward progress to each consumer | [`OperatorSpec::output_cost`] |
//! | `p`  | total work per unit of forward progress, `Σw + Σs` | [`OperatorSpec::p`] |
//! | `r`  | peak rate of forward progress of a query, `1 / p_max` | [`QueryModel::peak_rate`] |
//! | `u`  | maximum processor utilization of a query, `u' / p_max` | [`QueryModel::peak_utilization`] |
//! | `u'` | total work per unit of forward progress, `Σ_k p_k` | [`QueryModel::total_work`] |
//! | `φ`  | the pivot operator: highest node where sharing is possible | [`plan::PivotedPlan`] |
//! | `x(m,n)` | group rate of forward progress | [`sharing::SharingEvaluator::unshared_rate`], [`sharing::SharingEvaluator::shared_rate`] |
//! | `Z(m,n)` | benefit of sharing, `x_shared / x_unshared` | [`sharing::SharingEvaluator::speedup`] |
//!
//! ## Quick start
//!
//! ```
//! use cordoba_core::{OperatorSpec, PlanSpec, sharing::SharingEvaluator};
//!
//! // TPC-H Q6 as profiled in the paper (Section 4.4): a table scan with
//! // w = 9.66 and s = 10.34 feeding a p = 0.97 aggregate.
//! let mut plan = PlanSpec::new();
//! let scan = plan.add_leaf(OperatorSpec::new("scan", vec![9.66], vec![10.34]));
//! let agg = plan.add_node(OperatorSpec::new("agg", vec![0.97], vec![]), vec![scan]);
//! let plan = plan.finish(agg).unwrap();
//!
//! let eval = SharingEvaluator::homogeneous(&plan, scan, 16).unwrap();
//! // On one processor sharing 16 identical Q6 queries is a win ...
//! assert!(eval.speedup(1.0) > 1.0);
//! // ... but on 32 processors it is a large loss.
//! assert!(eval.speedup(32.0) < 0.5);
//! ```
//!
//! The extensions of Section 5 are in [`mismatch`] (open/closed systems,
//! mismatched rates), [`phases`] (stop-&-go operators) and [`joins`]
//! (NLJ / merge / hash join decomposition). Parameter estimation from
//! profiled operator active times (Section 3.1) is in [`estimate`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod contention;
pub mod decision;
pub mod error;
pub mod estimate;
pub mod fxhash;
pub mod joins;
pub mod linalg;
pub mod littles_law;
pub mod mismatch;
pub mod operator;
pub mod phases;
pub mod plan;
pub mod query;
pub mod sharing;

pub use contention::HardwareModel;
pub use decision::{Decision, ShareAdvisor};
pub use error::{ModelError, Result};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use operator::OperatorSpec;
pub use plan::{NodeId, PlanSpec};
pub use query::QueryModel;
pub use sharing::{SharingEvaluator, Speedup, WorkerScaling};
