//! Query-plan structure for the model: an arena tree of [`OperatorSpec`]s.

use crate::error::{ModelError, Result};
use crate::operator::OperatorSpec;
use serde::{Deserialize, Serialize};

/// Identifier of a node inside one [`PlanSpec`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index into the plan arena (stable for the plan's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PlanNode {
    pub(crate) op: OperatorSpec,
    pub(crate) children: Vec<NodeId>,
}

/// Builder for a [`PlanSpec`]: add nodes bottom-up, then [`PlanBuilder::finish`]
/// with the root. `PlanSpec::new()` returns this builder.
#[derive(Debug, Clone, Default)]
pub struct PlanBuilder {
    nodes: Vec<PlanNode>,
}

/// A validated query-plan tree whose nodes carry model parameters.
///
/// The tree is immutable after construction; the model only ever needs to
/// read per-node `p` values and subtree membership ("below the pivot").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanSpec {
    nodes: Vec<PlanNode>,
    root: NodeId,
    /// parent[i] = parent of node i, or usize::MAX for the root.
    parent: Vec<usize>,
}

impl PlanSpec {
    /// Starts building a plan. Add nodes with [`PlanBuilder::add_leaf`] /
    /// [`PlanBuilder::add_node`], then call [`PlanBuilder::finish`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> PlanBuilder {
        PlanBuilder::default()
    }

    /// Convenience constructor for a linear pipeline: `ops[0]` is the leaf
    /// and `ops.last()` is the root.
    pub fn pipeline(ops: Vec<OperatorSpec>) -> Result<Self> {
        let mut b = PlanBuilder::default();
        let mut prev: Option<NodeId> = None;
        for op in ops {
            let id = match prev {
                None => b.add_leaf(op),
                Some(child) => b.add_node(op, vec![child]),
            };
            prev = Some(id);
        }
        match prev {
            Some(root) => b.finish(root),
            None => Err(ModelError::EmptyPlan),
        }
    }

    /// Number of operators in the plan.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan is empty (never true for a validated plan).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The operator spec at `id`.
    pub fn op(&self, id: NodeId) -> &OperatorSpec {
        &self.nodes[id.0].op
    }

    /// Children of `id` (inputs of the operator).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0].children
    }

    /// Parent of `id`, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.parent[id.0];
        (p != usize::MAX).then_some(NodeId(p))
    }

    /// Iterates over all node ids in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Validates that `id` belongs to this plan.
    pub fn check_node(&self, id: NodeId) -> Result<()> {
        if id.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownNode(id.0))
        }
    }

    /// Node ids in the subtree rooted at `pivot`, including `pivot`
    /// itself ("below φ" in the paper includes the pivot's inputs; the
    /// pivot is returned so callers can treat it specially).
    pub fn subtree(&self, pivot: NodeId) -> Result<Vec<NodeId>> {
        self.check_node(pivot)?;
        let mut out = Vec::new();
        let mut stack = vec![pivot];
        while let Some(id) = stack.pop() {
            out.push(id);
            stack.extend(self.nodes[id.0].children.iter().copied());
        }
        Ok(out)
    }

    /// Node ids strictly below the pivot (the shared sub-plan minus the
    /// pivot itself).
    pub fn below(&self, pivot: NodeId) -> Result<Vec<NodeId>> {
        let mut sub = self.subtree(pivot)?;
        sub.retain(|&id| id != pivot);
        Ok(sub)
    }

    /// Node ids above the pivot: everything not in the subtree rooted at
    /// the pivot (paper Section 4.3: "k is above φ" means k is not part
    /// of the sub-tree rooted at φ).
    pub fn above(&self, pivot: NodeId) -> Result<Vec<NodeId>> {
        let sub = self.subtree(pivot)?;
        let mut in_sub = vec![false; self.nodes.len()];
        for id in sub {
            in_sub[id.0] = true;
        }
        Ok(self.node_ids().filter(|id| !in_sub[id.0]).collect())
    }

    /// Whether this plan and `other` have structurally identical subtrees
    /// rooted at the given pivots (same shape, operator names and costs) —
    /// the precondition for merging them into a sharing group.
    pub fn subtree_equivalent(&self, pivot: NodeId, other: &PlanSpec, other_pivot: NodeId) -> bool {
        fn eq(a: &PlanSpec, an: NodeId, b: &PlanSpec, bn: NodeId) -> bool {
            let (na, nb) = (&a.nodes[an.0], &b.nodes[bn.0]);
            na.op == nb.op
                && na.children.len() == nb.children.len()
                && na
                    .children
                    .iter()
                    .zip(&nb.children)
                    .all(|(&ca, &cb)| eq(a, ca, b, cb))
        }
        self.check_node(pivot).is_ok()
            && other.check_node(other_pivot).is_ok()
            && eq(self, pivot, other, other_pivot)
    }
}

impl PlanBuilder {
    /// Adds a leaf operator (no inputs), returning its id.
    pub fn add_leaf(&mut self, op: OperatorSpec) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(PlanNode {
            op,
            children: vec![],
        });
        id
    }

    /// Adds an operator with the given children, returning its id.
    pub fn add_node(&mut self, op: OperatorSpec, children: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(PlanNode { op, children });
        id
    }

    /// Validates the tree (connected, single-parent) and freezes it.
    pub fn finish(self, root: NodeId) -> Result<PlanSpec> {
        if self.nodes.is_empty() {
            return Err(ModelError::EmptyPlan);
        }
        if root.0 >= self.nodes.len() {
            return Err(ModelError::UnknownNode(root.0));
        }
        let n = self.nodes.len();
        let mut parent = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        seen[root.0] = true;
        let mut reachable = 1usize;
        while let Some(id) = stack.pop() {
            for &c in &self.nodes[id.0].children {
                if c.0 >= n {
                    return Err(ModelError::UnknownNode(c.0));
                }
                if parent[c.0] != usize::MAX || c == root {
                    return Err(ModelError::DuplicateChild(c.0));
                }
                parent[c.0] = id.0;
                if !seen[c.0] {
                    seen[c.0] = true;
                    reachable += 1;
                    stack.push(c);
                }
            }
        }
        if reachable != n {
            return Err(ModelError::DisconnectedPlan {
                reachable,
                total: n,
            });
        }
        Ok(PlanSpec {
            nodes: self.nodes,
            root,
            parent,
        })
    }
}

/// Designates where sharing may occur in a plan: the pivot operator φ.
///
/// Convenience wrapper pairing a plan with a chosen pivot, used by the
/// decision API.
#[derive(Debug, Clone)]
pub struct PivotedPlan {
    /// The query plan.
    pub plan: PlanSpec,
    /// The pivot node (root of the shareable sub-plan).
    pub pivot: NodeId,
}

impl PivotedPlan {
    /// Pairs a plan with a pivot after validating the pivot id.
    pub fn new(plan: PlanSpec, pivot: NodeId) -> Result<Self> {
        plan.check_node(pivot)?;
        Ok(Self { plan, pivot })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q6_like() -> (PlanSpec, NodeId, NodeId) {
        let mut b = PlanSpec::new();
        let scan = b.add_leaf(OperatorSpec::new("scan", vec![9.66], vec![10.34]));
        let agg = b.add_node(OperatorSpec::new("agg", vec![0.97], vec![]), vec![scan]);
        (b.finish(agg).unwrap(), scan, agg)
    }

    #[test]
    fn pipeline_builds_linear_plan() {
        let plan = PlanSpec::pipeline(vec![
            OperatorSpec::new("a", vec![1.0], vec![1.0]),
            OperatorSpec::new("b", vec![2.0], vec![1.0]),
            OperatorSpec::new("c", vec![3.0], vec![]),
        ])
        .unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.op(plan.root()).name, "c");
        assert_eq!(plan.children(plan.root()).len(), 1);
    }

    #[test]
    fn empty_pipeline_is_error() {
        assert_eq!(
            PlanSpec::pipeline(vec![]).unwrap_err(),
            ModelError::EmptyPlan
        );
    }

    #[test]
    fn subtree_below_above_partition_nodes() {
        let (plan, scan, agg) = q6_like();
        assert_eq!(plan.subtree(scan).unwrap(), vec![scan]);
        assert!(plan.below(scan).unwrap().is_empty());
        assert_eq!(plan.above(scan).unwrap(), vec![agg]);
        // Above the root there is nothing; below it is everything else.
        assert!(plan.above(agg).unwrap().is_empty());
        assert_eq!(plan.below(agg).unwrap(), vec![scan]);
    }

    #[test]
    fn parent_links() {
        let (plan, scan, agg) = q6_like();
        assert_eq!(plan.parent(scan), Some(agg));
        assert_eq!(plan.parent(agg), None);
    }

    #[test]
    fn join_plan_partitions() {
        // join(scan1, scan2) -> agg; pivot at join.
        let mut b = PlanSpec::new();
        let s1 = b.add_leaf(OperatorSpec::new("scan1", vec![4.0], vec![1.0]));
        let s2 = b.add_leaf(OperatorSpec::new("scan2", vec![6.0], vec![1.0]));
        let join = b.add_node(
            OperatorSpec::new("join", vec![1.0, 1.0], vec![0.5]),
            vec![s1, s2],
        );
        let agg = b.add_node(OperatorSpec::new("agg", vec![1.0], vec![]), vec![join]);
        let plan = b.finish(agg).unwrap();

        let mut below = plan.below(join).unwrap();
        below.sort();
        assert_eq!(below, vec![s1, s2]);
        assert_eq!(plan.above(join).unwrap(), vec![agg]);
    }

    #[test]
    fn disconnected_plan_rejected() {
        let mut b = PlanSpec::new();
        let _orphan = b.add_leaf(OperatorSpec::new("orphan", vec![1.0], vec![]));
        let root = b.add_leaf(OperatorSpec::new("root", vec![1.0], vec![]));
        assert!(matches!(
            b.finish(root),
            Err(ModelError::DisconnectedPlan { .. })
        ));
    }

    #[test]
    fn duplicate_child_rejected() {
        let mut b = PlanSpec::new();
        let leaf = b.add_leaf(OperatorSpec::new("leaf", vec![1.0], vec![1.0]));
        let a = b.add_node(OperatorSpec::new("a", vec![1.0], vec![1.0]), vec![leaf]);
        let root = b.add_node(OperatorSpec::new("root", vec![1.0], vec![]), vec![a, leaf]);
        assert!(matches!(b.finish(root), Err(ModelError::DuplicateChild(_))));
    }

    #[test]
    fn unknown_root_rejected() {
        let mut b = PlanSpec::new();
        let _leaf = b.add_leaf(OperatorSpec::new("leaf", vec![1.0], vec![]));
        assert!(matches!(
            b.finish(NodeId(5)),
            Err(ModelError::UnknownNode(5))
        ));
    }

    #[test]
    fn subtree_equivalence_detects_identical_scans() {
        let (p1, s1, _) = q6_like();
        let (p2, s2, a2) = q6_like();
        assert!(p1.subtree_equivalent(s1, &p2, s2));
        assert!(!p1.subtree_equivalent(s1, &p2, a2));
    }

    #[test]
    fn subtree_equivalence_sensitive_to_costs() {
        let (p1, s1, _) = q6_like();
        let mut b = PlanSpec::new();
        let scan = b.add_leaf(OperatorSpec::new("scan", vec![9.66], vec![99.0]));
        let agg = b.add_node(OperatorSpec::new("agg", vec![0.97], vec![]), vec![scan]);
        let p2 = b.finish(agg).unwrap();
        assert!(!p1.subtree_equivalent(s1, &p2, scan));
    }
}
