//! Error type shared across the model crate.

use std::fmt;

/// Convenient result alias for model operations.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Errors produced while building or evaluating model structures.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A cost parameter was negative or not finite.
    InvalidCost {
        /// Human-readable description of the offending parameter.
        what: String,
        /// The rejected value.
        value: f64,
    },
    /// A node id did not belong to the plan it was used with.
    UnknownNode(usize),
    /// The plan has no operators.
    EmptyPlan,
    /// The designated root does not dominate all nodes (disconnected plan).
    DisconnectedPlan {
        /// Number of nodes reachable from the root.
        reachable: usize,
        /// Total number of nodes in the arena.
        total: usize,
    },
    /// A node was used as a child of two different parents.
    DuplicateChild(usize),
    /// A sharing group must contain at least one query.
    EmptyGroup,
    /// The processor count must be positive.
    InvalidProcessors(f64),
    /// Parameter estimation was given insufficient or degenerate data.
    Estimation(String),
    /// Queries in a group have structurally incompatible shared sub-plans.
    IncompatiblePivot(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidCost { what, value } => {
                write!(
                    f,
                    "invalid cost for {what}: {value} (must be finite and >= 0)"
                )
            }
            ModelError::UnknownNode(id) => write!(f, "node id {id} does not belong to this plan"),
            ModelError::EmptyPlan => write!(f, "plan contains no operators"),
            ModelError::DisconnectedPlan { reachable, total } => write!(
                f,
                "plan is disconnected: {reachable} of {total} nodes reachable from root"
            ),
            ModelError::DuplicateChild(id) => {
                write!(f, "node id {id} was attached to more than one parent")
            }
            ModelError::EmptyGroup => write!(f, "sharing group must contain at least one query"),
            ModelError::InvalidProcessors(n) => {
                write!(f, "processor count must be positive and finite, got {n}")
            }
            ModelError::Estimation(msg) => write!(f, "parameter estimation failed: {msg}"),
            ModelError::IncompatiblePivot(msg) => write!(f, "incompatible sharing group: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Validates that a cost parameter is finite and non-negative.
pub(crate) fn check_cost(what: &str, value: f64) -> Result<f64> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(ModelError::InvalidCost {
            what: what.to_string(),
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_cost_accepts_zero_and_positive() {
        assert_eq!(check_cost("w", 0.0), Ok(0.0));
        assert_eq!(check_cost("w", 1.5), Ok(1.5));
    }

    #[test]
    fn check_cost_rejects_negative_nan_inf() {
        assert!(check_cost("w", -1.0).is_err());
        assert!(check_cost("w", f64::NAN).is_err());
        assert!(check_cost("w", f64::INFINITY).is_err());
    }

    #[test]
    fn errors_display_mentions_key_info() {
        let e = ModelError::InvalidCost {
            what: "s".into(),
            value: -2.0,
        };
        assert!(e.to_string().contains("s"));
        assert!(e.to_string().contains("-2"));
        let e = ModelError::UnknownNode(7);
        assert!(e.to_string().contains('7'));
    }
}
