//! Per-operator work parameters (`w`, `s`, `p` from the paper's Table 1).

use crate::error::{check_cost, Result};
use serde::{Deserialize, Serialize};

/// Work parameters of a single operator in a query plan.
///
/// All streams carry *units of forward progress* rather than tuples, so
/// operators with different selectivities are directly comparable (paper
/// Section 4.1.1). For each unit of overall forward progress:
///
/// * input stream `i` requires `input_work[i]` units of work (`w_i`), and
/// * each consumer `j` requires `output_cost[j]` units of work to receive
///   its copy of the output (`s_j`).
///
/// The total work per unit of forward progress is
/// `p = Σ_i w_i + Σ_j s_j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorSpec {
    /// Human-readable operator name (used in reports and errors only).
    pub name: String,
    /// `w_i`: work per unit of forward progress for each input stream.
    /// Leaf operators (scans) conventionally carry their entire private
    /// work in a single pseudo-input entry.
    pub input_work: Vec<f64>,
    /// `s_j`: work to output one unit of forward progress to each
    /// consumer. Most operators have exactly one consumer.
    pub output_cost: Vec<f64>,
    /// Whether the operator is stop-&-go (sort, hash-build): it must
    /// consume its entire input before producing output, which decouples
    /// the rates of the plan below it from the plan above it
    /// (paper Section 5.2).
    pub blocking: bool,
}

impl OperatorSpec {
    /// Creates a fully-pipelinable operator and validates all costs.
    ///
    /// # Panics
    ///
    /// Panics if any cost is negative or non-finite; use
    /// [`OperatorSpec::try_new`] for fallible construction.
    pub fn new(name: impl Into<String>, input_work: Vec<f64>, output_cost: Vec<f64>) -> Self {
        Self::try_new(name, input_work, output_cost).expect("invalid operator cost")
    }

    /// Fallible constructor: validates that every cost is finite and
    /// non-negative.
    pub fn try_new(
        name: impl Into<String>,
        input_work: Vec<f64>,
        output_cost: Vec<f64>,
    ) -> Result<Self> {
        let name = name.into();
        for (i, w) in input_work.iter().enumerate() {
            check_cost(&format!("{name}.w[{i}]"), *w)?;
        }
        for (j, s) in output_cost.iter().enumerate() {
            check_cost(&format!("{name}.s[{j}]"), *s)?;
        }
        Ok(Self {
            name,
            input_work,
            output_cost,
            blocking: false,
        })
    }

    /// Marks the operator as stop-&-go (sort, hash build, ...).
    #[must_use]
    pub fn blocking(mut self) -> Self {
        self.blocking = true;
        self
    }

    /// Total input-side work per unit of forward progress, `Σ_i w_i`.
    pub fn w(&self) -> f64 {
        self.input_work.iter().sum()
    }

    /// Total output-side work per unit of forward progress, `Σ_j s_j`.
    pub fn s_total(&self) -> f64 {
        self.output_cost.iter().sum()
    }

    /// Per-consumer output cost, assuming a single (or uniform) consumer.
    ///
    /// This is the `s` that grows with the number of sharers when the
    /// operator becomes a pivot: with `M` sharers the pivot pays
    /// `w + M·s` per unit of forward progress.
    pub fn s_per_consumer(&self) -> f64 {
        if self.output_cost.is_empty() {
            0.0
        } else {
            self.s_total() / self.output_cost.len() as f64
        }
    }

    /// Total work per unit of forward progress, `p = Σw + Σs`
    /// (paper Section 4.1.1).
    pub fn p(&self) -> f64 {
        self.w() + self.s_total()
    }

    /// `p` when this operator serves as a pivot feeding `m` consumers:
    /// `p_φ(m) = w_φ + m · s` (paper Section 4.3).
    pub fn p_as_pivot(&self, m: usize) -> f64 {
        self.w() + m as f64 * self.s_per_consumer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_is_sum_of_w_and_s() {
        let op = OperatorSpec::new("scan", vec![9.66], vec![10.34]);
        assert!((op.p() - 20.0).abs() < 1e-12);
        assert!((op.w() - 9.66).abs() < 1e-12);
        assert!((op.s_total() - 10.34).abs() < 1e-12);
    }

    #[test]
    fn multiple_inputs_and_outputs_sum() {
        let op = OperatorSpec::new("join", vec![2.0, 3.0], vec![1.0, 0.5]);
        assert!((op.w() - 5.0).abs() < 1e-12);
        assert!((op.s_total() - 1.5).abs() < 1e-12);
        assert!((op.p() - 6.5).abs() < 1e-12);
        assert!((op.s_per_consumer() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pivot_cost_grows_linearly_with_sharers() {
        // Paper Section 4.4: Q6 scan pivot, p_phi(M) = 9.66 + 10.34 M.
        let scan = OperatorSpec::new("scan", vec![9.66], vec![10.34]);
        assert!((scan.p_as_pivot(1) - 20.0).abs() < 1e-9);
        assert!((scan.p_as_pivot(10) - (9.66 + 103.4)).abs() < 1e-9);
        assert!((scan.p_as_pivot(0) - 9.66).abs() < 1e-9);
    }

    #[test]
    fn operator_with_no_outputs_has_zero_s() {
        let root = OperatorSpec::new("agg", vec![0.97], vec![]);
        assert_eq!(root.s_per_consumer(), 0.0);
        assert!((root.p() - 0.97).abs() < 1e-12);
    }

    #[test]
    fn try_new_rejects_bad_costs() {
        assert!(OperatorSpec::try_new("x", vec![-1.0], vec![]).is_err());
        assert!(OperatorSpec::try_new("x", vec![1.0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn blocking_flag_round_trips() {
        let sort = OperatorSpec::new("sort", vec![5.0], vec![1.0]).blocking();
        assert!(sort.blocking);
        let scan = OperatorSpec::new("scan", vec![1.0], vec![1.0]);
        assert!(!scan.blocking);
    }
}
