//! Integration: the model pipeline from plan construction through
//! advisor recommendations, exercised across hardware descriptions —
//! the full path the engine's model-guided policy drives at runtime.

use cordoba_core::contention::HardwareModel;
use cordoba_core::decision::ShareAdvisor;
use cordoba_core::phases::PhasedEvaluator;
use cordoba_core::{OperatorSpec, PlanSpec};

/// The paper's profiled Q6: scan (w=9.66, s=10.34) feeding a p=0.97
/// aggregate, shareable at the scan.
fn q6() -> (PlanSpec, cordoba_core::NodeId) {
    let mut b = PlanSpec::new();
    let scan = b.add_leaf(OperatorSpec::new("scan", vec![9.66], vec![10.34]));
    let agg = b.add_node(OperatorSpec::new("agg", vec![0.97], vec![]), vec![scan]);
    (b.finish(agg).unwrap(), scan)
}

#[test]
fn advisor_reproduces_paper_q6_recommendations() {
    // Section 4.4: sharing 16 Q6 queries wins on one context, loses on
    // a 32-context machine.
    let (plan, scan) = q6();
    let uni = ShareAdvisor::new(HardwareModel::ideal(1));
    let t1 = ShareAdvisor::new(HardwareModel::ideal(32));
    assert!(uni.advise_homogeneous(&plan, scan, 16).unwrap().share);
    assert!(!t1.advise_homogeneous(&plan, scan, 16).unwrap().share);
}

#[test]
fn hysteresis_suppresses_borderline_recommendations() {
    // A borderline group (Z barely above 1) is recommended at zero
    // hysteresis and suppressed once the margin exceeds the benefit.
    let (plan, scan) = q6();
    let n = 1;
    let plain = ShareAdvisor::new(HardwareModel::ideal(n));
    let z = plain.advise_homogeneous(&plan, scan, 2).unwrap().speedup.z;
    assert!(z > 1.0);
    let strict = plain.with_hysteresis(z - 1.0 + 0.01);
    assert!(!strict.advise_homogeneous(&plan, scan, 2).unwrap().share);
}

#[test]
fn contention_shrinks_effective_processors_toward_sharing() {
    // Heavy contention (low k) makes a 32-context machine behave like a
    // much smaller one, where sharing Q6 becomes attractive again —
    // the Section 4.1.4 interaction.
    let (plan, scan) = q6();
    let contended = ShareAdvisor::new(HardwareModel::with_contention(32, 0.2).unwrap());
    let d = contended.advise_homogeneous(&plan, scan, 16).unwrap();
    assert!(d.n_shared < 32.0);
    let ideal = ShareAdvisor::new(HardwareModel::ideal(32));
    let d_ideal = ideal.advise_homogeneous(&plan, scan, 16).unwrap();
    assert!(
        d.speedup.z > d_ideal.speedup.z,
        "contention must favor sharing: {} vs {}",
        d.speedup.z,
        d_ideal.speedup.z
    );
}

#[test]
fn phased_and_flat_evaluation_agree_on_pipelinable_plans() {
    // A plan with no blocking operators decomposes into one phase, so
    // the phased speedup must equal the flat evaluator's.
    use cordoba_core::sharing::SharingEvaluator;
    let (plan, scan) = q6();
    let phased = PhasedEvaluator::new(&plan).unwrap();
    assert_eq!(phased.phases().len(), 1);
    let (idx, node) = phased.find_op("scan").unwrap();
    for (m, n) in [(4usize, 1.0), (16, 8.0), (32, 32.0)] {
        let whole = phased.speedup(idx, node, m, n).unwrap();
        let flat = SharingEvaluator::homogeneous(&plan, scan, m)
            .unwrap()
            .speedup(n);
        assert!(
            (whole - flat).abs() < 1e-9,
            "m={m} n={n}: {whole} vs {flat}"
        );
    }
}
