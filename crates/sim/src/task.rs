//! Cooperative tasks: the unit of scheduling in the simulator.

use crate::VTime;

/// Identifier of a spawned task, unique within one [`crate::Simulator`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Raw index (stable for the simulator's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a task did during one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// Made progress and can run again immediately.
    Yield,
    /// Cannot proceed until another task wakes it (registered itself as
    /// a waiter on some channel during the step).
    Blocked,
    /// Parks without occupying a context for the given virtual duration
    /// (after the step's cost elapses), then becomes ready again. An
    /// explicit wake-up delivers earlier. Used by timer-driven control
    /// tasks like the engine's group dispatcher.
    Sleep(VTime),
    /// Finished; the task is removed from the simulator.
    Done,
}

/// Result of one [`Task::step`] call: the virtual cost of the work just
/// performed plus the task's continuation status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Virtual work units consumed by this step. May be zero (e.g. a
    /// step that only discovered it was blocked).
    pub cost: VTime,
    /// Continuation status.
    pub status: StepStatus,
}

impl Step {
    /// A step that did `cost` work and can continue.
    pub fn yielded(cost: VTime) -> Self {
        Self {
            cost,
            status: StepStatus::Yield,
        }
    }

    /// A step after which the task is blocked on a channel.
    pub fn blocked(cost: VTime) -> Self {
        Self {
            cost,
            status: StepStatus::Blocked,
        }
    }

    /// A step after which the task idles (off-context) for `delay`.
    pub fn sleep(cost: VTime, delay: VTime) -> Self {
        Self {
            cost,
            status: StepStatus::Sleep(delay),
        }
    }

    /// A step after which the task is finished.
    pub fn done(cost: VTime) -> Self {
        Self {
            cost,
            status: StepStatus::Done,
        }
    }
}

/// Per-step context handed to tasks: identifies the running task,
/// exposes virtual time, and collects wake-ups and spawns produced
/// during the step (applied when the step's cost has elapsed).
pub struct TaskCtx<'a> {
    pub(crate) task_id: TaskId,
    pub(crate) now: VTime,
    pub(crate) wakes: &'a mut Vec<TaskId>,
    pub(crate) spawns: &'a mut Vec<(String, Box<dyn Task>)>,
    pub(crate) progress: &'a mut f64,
}

impl TaskCtx<'_> {
    /// The id of the currently running task.
    pub fn task_id(&self) -> TaskId {
        self.task_id
    }

    /// Virtual time at the start of this step.
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Requests that `id` be moved from blocked to ready when this step
    /// completes. Waking a task that is not blocked is a no-op (spurious
    /// wake-ups are harmless). Channels call this internally; tasks
    /// rarely need it directly.
    pub fn wake(&mut self, id: TaskId) {
        self.wakes.push(id);
    }

    /// Spawns a new task when this step completes. Used by closed-system
    /// client logic: a finished query's root spawns its replacement.
    pub fn spawn(&mut self, name: impl Into<String>, task: Box<dyn Task>) {
        self.spawns.push((name.into(), task));
    }

    /// Records `units` of forward progress for the running task. The
    /// profiler divides accumulated active time by accumulated progress
    /// to estimate the model's `p` parameters (paper Section 3.1).
    pub fn add_progress(&mut self, units: f64) {
        *self.progress += units;
    }
}

/// Owned backing storage for a [`TaskCtx`] outside a simulator run.
///
/// Channel endpoints take a `&mut TaskCtx` so the simulator can route
/// wake-ups, but harness code — unit tests, the model-check suite
/// enumerating close-vs-send interleavings — drives them directly with
/// no simulator in sight. A `DetachedCtx` owns the buffers a context
/// borrows; [`DetachedCtx::ctx`] mints a context impersonating any
/// task id, and the recorded wakes stay inspectable afterwards.
#[derive(Default)]
pub struct DetachedCtx {
    wakes: Vec<TaskId>,
    spawns: Vec<(String, Box<dyn Task>)>,
    progress: f64,
}

impl DetachedCtx {
    /// Fresh storage with no recorded wakes, spawns, or progress.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context impersonating task `id` at virtual time zero.
    pub fn ctx(&mut self, id: usize) -> TaskCtx<'_> {
        TaskCtx {
            task_id: TaskId(id),
            now: 0,
            wakes: &mut self.wakes,
            spawns: &mut self.spawns,
            progress: &mut self.progress,
        }
    }

    /// Drains and returns the wake requests recorded so far.
    pub fn drain_wakes(&mut self) -> Vec<TaskId> {
        std::mem::take(&mut self.wakes)
    }
}

/// Anything that can register new tasks: the [`crate::Simulator`] itself
/// (before or between runs, returning the new id) or a [`TaskCtx`]
/// (mid-run, applied when the current step completes; no id available).
pub trait Spawner {
    /// Registers a task for execution.
    fn spawn_task(&mut self, name: String, task: Box<dyn Task>) -> Option<TaskId>;
}

impl Spawner for TaskCtx<'_> {
    fn spawn_task(&mut self, name: String, task: Box<dyn Task>) -> Option<TaskId> {
        self.spawn(name, task);
        None
    }
}

/// A cooperative task executed by the simulator.
///
/// Implementations should do a bounded amount of work per step (the
/// engine uses one page of tuples) so that scheduling granularity stays
/// fine enough for round-robin fairness to matter, mirroring the T1's
/// per-cycle thread switching at a coarser grain.
pub trait Task {
    /// Performs one unit of work, returning its virtual cost and status.
    ///
    /// A task returning [`StepStatus::Blocked`] must have registered
    /// itself as a waiter on some channel during the step (via a failed
    /// `try_send` / `try_recv`); otherwise it will never run again and
    /// the simulator will report a deadlock.
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_constructors() {
        assert_eq!(
            Step::yielded(5),
            Step {
                cost: 5,
                status: StepStatus::Yield
            }
        );
        assert_eq!(
            Step::blocked(0),
            Step {
                cost: 0,
                status: StepStatus::Blocked
            }
        );
        assert_eq!(
            Step::done(2),
            Step {
                cost: 2,
                status: StepStatus::Done
            }
        );
    }

    #[test]
    fn ctx_collects_wakes_spawns_progress() {
        struct Nop;
        impl Task for Nop {
            fn step(&mut self, _: &mut TaskCtx<'_>) -> Step {
                Step::done(0)
            }
        }
        let mut wakes = Vec::new();
        let mut spawns = Vec::new();
        let mut progress = 0.0;
        let mut ctx = TaskCtx {
            task_id: TaskId(3),
            now: 17,
            wakes: &mut wakes,
            spawns: &mut spawns,
            progress: &mut progress,
        };
        assert_eq!(ctx.task_id(), TaskId(3));
        assert_eq!(ctx.now(), 17);
        ctx.wake(TaskId(9));
        ctx.spawn("child", Box::new(Nop));
        ctx.add_progress(2.5);
        ctx.add_progress(0.5);
        assert_eq!(wakes, vec![TaskId(9)]);
        assert_eq!(spawns.len(), 1);
        assert_eq!(spawns[0].0, "child");
        assert_eq!(progress, 3.0);
    }
}
