//! Accounting: per-task active time & forward progress, machine
//! utilization. These measurements feed the model's parameter
//! estimation (paper Section 3.1) and the utilization arguments of
//! Section 6.

use crate::VTime;
use serde::{Deserialize, Serialize};

/// Statistics for one task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// Total virtual time the task spent executing steps (busy time).
    pub active: VTime,
    /// Number of steps executed.
    pub steps: u64,
    /// Accumulated forward progress reported via
    /// [`crate::TaskCtx::add_progress`].
    pub progress: f64,
    /// Virtual completion time, if the task finished.
    pub completed_at: Option<VTime>,
}

impl TaskStats {
    /// Active time per unit of forward progress — the empirical `p` of
    /// the model (active/progress), or `None` if no progress was made.
    pub fn p_estimate(&self) -> Option<f64> {
        (self.progress > 0.0).then(|| self.active as f64 / self.progress)
    }
}

/// Machine-level statistics for a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Virtual time at the end of the run.
    pub makespan: VTime,
    /// Number of contexts simulated.
    pub contexts: usize,
    /// Busy time per context.
    pub busy: Vec<VTime>,
}

impl SimStats {
    /// Fraction of total context-time spent busy, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let busy: u128 = self.busy.iter().map(|&b| b as u128).sum();
        busy as f64 / (self.makespan as u128 * self.contexts as u128) as f64
    }

    /// Average number of busy contexts over the run (utilization × n) —
    /// directly comparable to the model's `u`.
    pub fn mean_busy_contexts(&self) -> f64 {
        self.utilization() * self.contexts as f64
    }
}

/// A response-time (or any latency) distribution: exact nearest-rank
/// quantiles over the recorded samples plus power-of-two buckets for
/// compact machine-readable reports.
///
/// Samples are kept exactly (a service run records one value per
/// completed query — thousands, not billions), so quantiles are true
/// order statistics rather than bucket approximations; the log2 buckets
/// exist only for rendering histograms in `summary.json`-style output.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<VTime>,
    sorted: bool,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from a batch of samples.
    pub fn from_samples(samples: Vec<VTime>) -> Self {
        Self {
            samples,
            sorted: false,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: VTime) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Nearest-rank quantile: the smallest recorded sample such that at
    /// least `⌈q·N⌉` samples are ≤ it (`q = 0` yields the minimum,
    /// `q = 1` the maximum). `None` on an empty histogram or a `q`
    /// outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<VTime> {
        if self.samples.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        self.ensure_sorted();
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1);
        Some(self.samples[rank.min(self.samples.len()) - 1])
    }

    /// Arithmetic mean of the samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&v| v as u128).sum();
        Some(sum as f64 / self.samples.len() as f64)
    }

    /// The standard tail summary (`count`/`min`/`mean`/`p50`/`p90`/
    /// `p99`/`p999`/`max`), or `None` when empty.
    pub fn summary(&mut self) -> Option<LatencySummary> {
        if self.samples.is_empty() {
            return None;
        }
        let mean = self.mean().expect("non-empty");
        self.ensure_sorted();
        Some(LatencySummary {
            count: self.samples.len() as u64,
            min: self.samples[0],
            max: *self.samples.last().expect("non-empty"),
            mean,
            p50: self.quantile(0.50).expect("non-empty"),
            p90: self.quantile(0.90).expect("non-empty"),
            p99: self.quantile(0.99).expect("non-empty"),
            p999: self.quantile(0.999).expect("non-empty"),
        })
    }

    /// Power-of-two histogram buckets as `(upper bound, count)` pairs in
    /// ascending bound order, empty buckets skipped: a sample `v` lands
    /// in the smallest bucket with `v ≤ bound`. Zero samples land in the
    /// `1` bucket.
    pub fn log2_buckets(&mut self) -> Vec<(VTime, u64)> {
        self.ensure_sorted();
        let mut out: Vec<(VTime, u64)> = Vec::new();
        for &v in &self.samples {
            let bound = v.max(1).next_power_of_two();
            match out.last_mut() {
                Some((b, n)) if *b == bound => *n += 1,
                _ => out.push((bound, 1)),
            }
        }
        out
    }
}

/// The tail-latency summary of one [`Histogram`] (quantiles are
/// nearest-rank order statistics, not bucket midpoints).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Smallest sample.
    pub min: VTime,
    /// Largest sample.
    pub max: VTime,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: VTime,
    /// 90th percentile.
    pub p90: VTime,
    /// 99th percentile.
    pub p99: VTime,
    /// 99.9th percentile.
    pub p999: VTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_estimate_divides_active_by_progress() {
        let s = TaskStats {
            active: 200,
            steps: 10,
            progress: 10.0,
            completed_at: None,
        };
        assert_eq!(s.p_estimate(), Some(20.0));
        let none = TaskStats::default();
        assert_eq!(none.p_estimate(), None);
    }

    #[test]
    fn utilization_bounds() {
        let s = SimStats {
            makespan: 100,
            contexts: 2,
            busy: vec![100, 50],
        };
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert!((s.mean_busy_contexts() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_utilization() {
        let s = SimStats {
            makespan: 0,
            contexts: 4,
            busy: vec![0; 4],
        };
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        // 1..=100 makes nearest-rank quantiles directly readable:
        // p50 = 50th sample = 50, p99 = 99, p999 = ⌈99.9⌉ = 100.
        let mut h = Histogram::from_samples((1..=100).rev().collect());
        assert_eq!(h.len(), 100);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.50), Some(50));
        assert_eq!(h.quantile(0.90), Some(90));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(0.999), Some(100));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.quantile(1.5), None, "out-of-range q");
        assert_eq!(h.mean(), Some(50.5));
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.record(42);
        let s = h.summary().expect("one sample");
        assert_eq!((s.count, s.min, s.max), (1, 42, 42));
        assert_eq!((s.p50, s.p90, s.p99, s.p999), (42, 42, 42, 42));
        assert_eq!(s.mean, 42.0);
    }

    #[test]
    fn empty_histogram_yields_none_everywhere() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert!(h.summary().is_none());
        assert!(h.log2_buckets().is_empty());
    }

    #[test]
    fn quantile_exact_rank_boundaries() {
        // With N = 4, q·N lands exactly on integer ranks at the
        // quartiles. Nearest-rank uses ⌈q·N⌉, so a q *at* the boundary
        // selects that rank, and any q just above it moves to the next.
        let mut h = Histogram::from_samples(vec![10, 20, 30, 40]);
        assert_eq!(h.quantile(0.25), Some(10), "⌈1.0⌉ = rank 1");
        assert_eq!(h.quantile(0.26), Some(20), "⌈1.04⌉ = rank 2");
        assert_eq!(h.quantile(0.50), Some(20), "⌈2.0⌉ = rank 2");
        assert_eq!(h.quantile(0.51), Some(30), "⌈2.04⌉ = rank 3");
        assert_eq!(h.quantile(0.75), Some(30), "⌈3.0⌉ = rank 3");
        assert_eq!(h.quantile(0.76), Some(40), "⌈3.04⌉ = rank 4");
        // q = 0 would give rank 0; the .max(1) clamp yields the minimum.
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(1.0), Some(40));
    }

    #[test]
    fn quantile_rejects_out_of_range_and_nan_q() {
        let mut h = Histogram::from_samples(vec![1, 2, 3]);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(f64::NAN), None, "NaN is outside [0, 1]");
    }

    #[test]
    fn quantile_resorts_after_late_records() {
        let mut h = Histogram::from_samples(vec![50, 60]);
        assert_eq!(h.quantile(0.0), Some(50));
        // A record after a quantile call invalidates the sort; the next
        // quantile must see the new minimum, not a stale order.
        h.record(5);
        assert_eq!(h.quantile(0.0), Some(5));
        assert_eq!(h.quantile(1.0), Some(60));
    }

    #[test]
    fn merge_and_record_are_order_insensitive() {
        let mut a = Histogram::from_samples(vec![5, 1, 9]);
        let b = Histogram::from_samples(vec![3, 7]);
        a.merge(&b);
        a.record(2);
        let mut c = Histogram::from_samples(vec![1, 2, 3, 5, 7, 9]);
        assert_eq!(a.summary(), c.summary(), "same multiset, same summary");
    }

    #[test]
    fn log2_buckets_cover_all_samples() {
        let mut h = Histogram::from_samples(vec![0, 1, 2, 3, 4, 5, 8, 9, 1000]);
        let buckets = h.log2_buckets();
        assert_eq!(
            buckets,
            vec![(1, 2), (2, 1), (4, 2), (8, 2), (16, 1), (1024, 1)]
        );
        let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, h.len() as u64);
    }
}
