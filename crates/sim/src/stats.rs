//! Accounting: per-task active time & forward progress, machine
//! utilization. These measurements feed the model's parameter
//! estimation (paper Section 3.1) and the utilization arguments of
//! Section 6.

use crate::VTime;
use serde::{Deserialize, Serialize};

/// Statistics for one task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// Total virtual time the task spent executing steps (busy time).
    pub active: VTime,
    /// Number of steps executed.
    pub steps: u64,
    /// Accumulated forward progress reported via
    /// [`crate::TaskCtx::add_progress`].
    pub progress: f64,
    /// Virtual completion time, if the task finished.
    pub completed_at: Option<VTime>,
}

impl TaskStats {
    /// Active time per unit of forward progress — the empirical `p` of
    /// the model (active/progress), or `None` if no progress was made.
    pub fn p_estimate(&self) -> Option<f64> {
        (self.progress > 0.0).then(|| self.active as f64 / self.progress)
    }
}

/// Machine-level statistics for a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Virtual time at the end of the run.
    pub makespan: VTime,
    /// Number of contexts simulated.
    pub contexts: usize,
    /// Busy time per context.
    pub busy: Vec<VTime>,
}

impl SimStats {
    /// Fraction of total context-time spent busy, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let busy: u128 = self.busy.iter().map(|&b| b as u128).sum();
        busy as f64 / (self.makespan as u128 * self.contexts as u128) as f64
    }

    /// Average number of busy contexts over the run (utilization × n) —
    /// directly comparable to the model's `u`.
    pub fn mean_busy_contexts(&self) -> f64 {
        self.utilization() * self.contexts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_estimate_divides_active_by_progress() {
        let s = TaskStats {
            active: 200,
            steps: 10,
            progress: 10.0,
            completed_at: None,
        };
        assert_eq!(s.p_estimate(), Some(20.0));
        let none = TaskStats::default();
        assert_eq!(none.p_estimate(), None);
    }

    #[test]
    fn utilization_bounds() {
        let s = SimStats {
            makespan: 100,
            contexts: 2,
            busy: vec![100, 50],
        };
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert!((s.mean_busy_contexts() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_utilization() {
        let s = SimStats {
            makespan: 0,
            contexts: 4,
            busy: vec![0; 4],
        };
        assert_eq!(s.utilization(), 0.0);
    }
}
