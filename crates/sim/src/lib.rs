//! # cordoba-sim — a deterministic discrete-event CMP simulator
//!
//! The paper's experiments run on a Sun UltraSparc T1: 8 cores × 4
//! hardware contexts, round-robin instruction issue, "guaranteeing
//! fairness of execution". This crate substitutes that machine with a
//! discrete-event simulator so the workspace can sweep 1–32 (or more)
//! contexts on any host, deterministically.
//!
//! ## Execution model
//!
//! * A [`Task`] is a cooperative state machine. Each [`Task::step`]
//!   performs a bounded amount of real computation (e.g. filtering one
//!   page of tuples) and reports its **virtual cost** in abstract work
//!   units, plus whether it can continue, is blocked on a channel, or is
//!   finished.
//! * The [`Simulator`] schedules tasks on `n` contexts. Ready tasks wait
//!   in a FIFO run queue (round-robin fairness, like the T1); each
//!   context repeatedly pops a task, executes one step, and becomes free
//!   again `cost` virtual time units later.
//! * Tasks communicate through bounded [`channel`]s. A full channel
//!   throttles its producer and an empty one parks its consumer — the
//!   finite-buffering assumption of the paper's model ("slow consumers
//!   throttle producers").
//!
//! Virtual time is completely decoupled from wall-clock time: the
//! simulated 32-context machine runs fine on a 2-core laptop, and two
//! runs with the same inputs produce bit-identical schedules.
//!
//! ## Example
//!
//! ```
//! use cordoba_sim::{Simulator, Task, TaskCtx, Step, channel};
//!
//! struct Producer { tx: channel::Sender<u64>, left: u64 }
//! impl Task for Producer {
//!     fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
//!         if self.left == 0 {
//!             self.tx.close(ctx);
//!             return Step::done(0);
//!         }
//!         match self.tx.try_send(self.left, ctx) {
//!             Ok(()) => { self.left -= 1; Step::yielded(10) }
//!             Err(_) => Step::blocked(0),
//!         }
//!     }
//! }
//! struct Consumer { rx: channel::Receiver<u64>, seen: u64 }
//! impl Task for Consumer {
//!     fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
//!         match self.rx.try_recv(ctx) {
//!             channel::Recv::Value(_) => { self.seen += 1; Step::yielded(10) }
//!             channel::Recv::Empty => Step::blocked(0),
//!             channel::Recv::Closed => Step::done(0),
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(2);
//! let (tx, rx) = channel::bounded(4);
//! sim.spawn("producer", Box::new(Producer { tx, left: 100 }));
//! sim.spawn("consumer", Box::new(Consumer { rx, seen: 0 }));
//! let outcome = sim.run_to_idle();
//! assert!(outcome.completed_all());
//! // Two contexts overlap the 10-unit producer and consumer steps.
//! assert!(sim.now() < 2100);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod sched;
pub mod stats;
pub mod task;
pub mod trace;

pub use sched::{RunOutcome, SimConfig, Simulator, StopReason};
pub use stats::{Histogram, LatencySummary, SimStats, TaskStats};
pub use task::{DetachedCtx, Spawner, Step, StepStatus, Task, TaskCtx, TaskId};

/// Virtual time / work units. One unit is an abstract "cost unit"; the
/// engine calibrates operator costs in these units.
pub type VTime = u64;
