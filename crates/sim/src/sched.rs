//! The event-driven scheduler: `n` contexts, FIFO run queue
//! (round-robin fairness, like the UltraSparc T1), per-step cost
//! accounting in virtual time.

use crate::stats::{SimStats, TaskStats};
use crate::task::{Step, StepStatus, Task, TaskCtx, TaskId};
use crate::VTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of hardware contexts (the paper sweeps 1, 2, 8, 32).
    pub contexts: usize,
    /// Safety valve: a task yielding this many consecutive zero-cost
    /// steps is considered buggy and aborts the simulation with a panic.
    pub max_zero_cost_spins: u32,
    /// Record per-step busy intervals for [`Simulator::trace`] /
    /// [`crate::trace::render_gantt`]. Off by default (long experiment
    /// runs would accumulate millions of spans).
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            contexts: 1,
            max_zero_cost_spins: 1_000_000,
            trace: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Ready,
    Running,
    Blocked,
    Done,
}

struct TaskSlot {
    task: Option<Box<dyn Task>>,
    state: TaskState,
    stats: TaskStats,
    zero_spins: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    ContextFree(usize),
    TaskReady(TaskId),
}

/// Why a [`Simulator::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No events remain and no task is runnable: all tasks completed.
    Idle,
    /// The virtual-time limit was reached with work still pending.
    TimeLimit,
    /// Live tasks remain but none can ever run again (all blocked).
    Deadlock,
}

/// Result of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Virtual time when it stopped.
    pub now: VTime,
    /// Number of tasks still alive (not `Done`).
    pub live_tasks: usize,
}

impl RunOutcome {
    /// True when every spawned task ran to completion.
    pub fn completed_all(&self) -> bool {
        self.reason == StopReason::Idle && self.live_tasks == 0
    }
}

/// Deterministic discrete-event simulator of an `n`-context CMP.
pub struct Simulator {
    config: SimConfig,
    slots: Vec<TaskSlot>,
    names: Vec<String>,
    run_queue: VecDeque<TaskId>,
    events: BinaryHeap<Reverse<(VTime, u64, EventOrd)>>,
    idle_contexts: Vec<usize>, // kept sorted descending; pop() yields smallest
    now: VTime,
    seq: u64,
    busy: Vec<VTime>,
    live_tasks: usize,
    trace: Vec<crate::trace::Span>,
}

/// Orderable wrapper so the heap stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventOrd {
    ContextFree(usize),
    TaskReady(usize),
}

impl From<Event> for EventOrd {
    fn from(e: Event) -> Self {
        match e {
            Event::ContextFree(c) => EventOrd::ContextFree(c),
            Event::TaskReady(t) => EventOrd::TaskReady(t.0),
        }
    }
}

impl crate::task::Spawner for Simulator {
    fn spawn_task(&mut self, name: String, task: Box<dyn Task>) -> Option<TaskId> {
        Some(self.spawn(name, task))
    }
}

impl Simulator {
    /// Creates a simulator with `contexts` hardware contexts.
    pub fn new(contexts: usize) -> Self {
        Self::with_config(SimConfig {
            contexts,
            ..SimConfig::default()
        })
    }

    /// Creates a simulator from a full configuration.
    pub fn with_config(config: SimConfig) -> Self {
        assert!(config.contexts > 0, "need at least one context");
        let mut idle: Vec<usize> = (0..config.contexts).collect();
        idle.reverse();
        Self {
            config,
            slots: Vec::new(),
            names: Vec::new(),
            run_queue: VecDeque::new(),
            events: BinaryHeap::new(),
            idle_contexts: idle,
            now: 0,
            seq: 0,
            busy: vec![0; config.contexts],
            live_tasks: 0,
            trace: Vec::new(),
        }
    }

    /// Registers a task; it becomes runnable immediately (at the current
    /// virtual time once `run` is called).
    pub fn spawn(&mut self, name: impl Into<String>, task: Box<dyn Task>) -> TaskId {
        let id = TaskId(self.slots.len());
        self.slots.push(TaskSlot {
            task: Some(task),
            state: TaskState::Ready,
            stats: TaskStats::default(),
            zero_spins: 0,
        });
        self.names.push(name.into());
        self.run_queue.push_back(id);
        self.live_tasks += 1;
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Number of contexts being simulated.
    pub fn contexts(&self) -> usize {
        self.config.contexts
    }

    /// Per-task statistics (active time, steps, forward progress).
    pub fn task_stats(&self, id: TaskId) -> &TaskStats {
        &self.slots[id.0].stats
    }

    /// The name a task was spawned with.
    pub fn task_name(&self, id: TaskId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(id, name, stats)` for every task ever spawned.
    pub fn all_task_stats(&self) -> impl Iterator<Item = (TaskId, &str, &TaskStats)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (TaskId(i), self.names[i].as_str(), &s.stats))
    }

    /// Recorded busy intervals (empty unless [`SimConfig::trace`] is on).
    pub fn trace(&self) -> &[crate::trace::Span] {
        &self.trace
    }

    /// Aggregate machine statistics so far.
    pub fn stats(&self) -> SimStats {
        SimStats {
            makespan: self.now,
            contexts: self.config.contexts,
            busy: self.busy.clone(),
        }
    }

    /// Runs until idle, deadlock, or (if given) a virtual-time limit.
    pub fn run(&mut self, limit: Option<VTime>) -> RunOutcome {
        loop {
            self.dispatch();
            let Some(&Reverse((t, _, _))) = self.events.peek() else {
                let reason = if self.live_tasks == 0 {
                    StopReason::Idle
                } else {
                    StopReason::Deadlock
                };
                return RunOutcome {
                    reason,
                    now: self.now,
                    live_tasks: self.live_tasks,
                };
            };
            if let Some(lim) = limit {
                if t > lim {
                    self.now = lim;
                    return RunOutcome {
                        reason: StopReason::TimeLimit,
                        now: self.now,
                        live_tasks: self.live_tasks,
                    };
                }
            }
            let Reverse((t, _, ev)) = self.events.pop().expect("peeked");
            debug_assert!(t >= self.now, "time must be monotone");
            self.now = t;
            match ev {
                EventOrd::ContextFree(ctx) => {
                    // Keep the idle list sorted descending so pop()
                    // yields the lowest-numbered context first.
                    let pos = self
                        .idle_contexts
                        .binary_search_by(|&c| ctx.cmp(&c))
                        .unwrap_err();
                    self.idle_contexts.insert(pos, ctx);
                }
                EventOrd::TaskReady(t) => {
                    let id = TaskId(t);
                    if self.slots[id.0].state == TaskState::Blocked {
                        self.slots[id.0].state = TaskState::Ready;
                        self.run_queue.push_back(id);
                    }
                }
            }
        }
    }

    /// Runs until all tasks complete (or deadlock).
    pub fn run_to_idle(&mut self) -> RunOutcome {
        self.run(None)
    }

    fn push_event(&mut self, time: VTime, event: Event) {
        self.seq += 1;
        self.events.push(Reverse((time, self.seq, event.into())));
    }

    /// Starts as many ready tasks as there are idle contexts, at the
    /// current virtual time.
    fn dispatch(&mut self) {
        while !self.run_queue.is_empty() && !self.idle_contexts.is_empty() {
            let id = self.run_queue.pop_front().expect("non-empty");
            if self.slots[id.0].state != TaskState::Ready {
                continue;
            }
            let ctx_id = self.idle_contexts.pop().expect("non-empty");
            self.execute_step(id, ctx_id);
        }
    }

    fn execute_step(&mut self, id: TaskId, ctx_id: usize) {
        self.slots[id.0].state = TaskState::Running;
        let mut task = self.slots[id.0].task.take().expect("running task present");
        let mut wakes = Vec::new();
        let mut spawns = Vec::new();
        let mut progress = 0.0;
        let step = {
            let mut ctx = TaskCtx {
                task_id: id,
                now: self.now,
                wakes: &mut wakes,
                spawns: &mut spawns,
                progress: &mut progress,
            };
            task.step(&mut ctx)
        };
        self.apply_step(id, ctx_id, task, step, wakes, spawns, progress);
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_step(
        &mut self,
        id: TaskId,
        ctx_id: usize,
        task: Box<dyn Task>,
        step: Step,
        wakes: Vec<TaskId>,
        spawns: Vec<(String, Box<dyn Task>)>,
        progress: f64,
    ) {
        let end = self.now + step.cost;
        let slot = &mut self.slots[id.0];
        slot.stats.active += step.cost;
        slot.stats.steps += 1;
        slot.stats.progress += progress;
        if step.cost == 0 && step.status == StepStatus::Yield {
            slot.zero_spins += 1;
            assert!(
                slot.zero_spins <= self.config.max_zero_cost_spins,
                "task '{}' spun {} zero-cost yields: livelock bug",
                self.names[id.0],
                slot.zero_spins
            );
        } else {
            slot.zero_spins = 0;
        }
        self.busy[ctx_id] += step.cost;
        if self.config.trace && step.cost > 0 {
            self.trace.push(crate::trace::Span {
                task: id,
                context: ctx_id,
                start: self.now,
                end,
            });
        }
        match step.status {
            StepStatus::Yield => {
                // The task becomes runnable again when its step's cost
                // has elapsed; park it as Blocked so the TaskReady event
                // re-queues it (the uniform wake-up path).
                slot.task = Some(task);
                slot.state = TaskState::Blocked;
                self.push_event(end, Event::TaskReady(id));
            }
            StepStatus::Blocked => {
                slot.task = Some(task);
                slot.state = TaskState::Blocked;
            }
            StepStatus::Sleep(delay) => {
                // Parked like Blocked, but with a guaranteed wake-up
                // timer; an explicit wake() delivers earlier.
                slot.task = Some(task);
                slot.state = TaskState::Blocked;
                self.push_event(end + delay, Event::TaskReady(id));
            }
            StepStatus::Done => {
                slot.state = TaskState::Done;
                slot.stats.completed_at = Some(end);
                self.live_tasks -= 1;
                drop(task);
            }
        }
        // Effects (wake-ups, spawns) land when the step's work completes.
        for w in wakes {
            self.push_event(end, Event::TaskReady(w));
        }
        for (name, t) in spawns {
            let new_id = TaskId(self.slots.len());
            self.slots.push(TaskSlot {
                task: Some(t),
                state: TaskState::Blocked, // made Ready by the event below
                stats: TaskStats::default(),
                zero_spins: 0,
            });
            self.names.push(name);
            self.live_tasks += 1;
            self.push_event(end, Event::TaskReady(new_id));
        }
        self.push_event(end, Event::ContextFree(ctx_id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{self, Recv};

    /// A task that performs `steps` steps of `cost` units each.
    struct Burn {
        steps: u32,
        cost: VTime,
    }
    impl Task for Burn {
        fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
            ctx.add_progress(1.0);
            if self.steps == 0 {
                return Step::done(0);
            }
            self.steps -= 1;
            if self.steps == 0 {
                Step::done(self.cost)
            } else {
                Step::yielded(self.cost)
            }
        }
    }

    #[test]
    fn single_task_single_context_time_adds_up() {
        let mut sim = Simulator::new(1);
        let id = sim.spawn("burn", Box::new(Burn { steps: 10, cost: 7 }));
        let out = sim.run_to_idle();
        assert!(out.completed_all());
        assert_eq!(sim.now(), 70);
        assert_eq!(sim.task_stats(id).active, 70);
        assert_eq!(sim.task_stats(id).completed_at, Some(70));
    }

    #[test]
    fn two_tasks_one_context_serialize() {
        let mut sim = Simulator::new(1);
        sim.spawn("a", Box::new(Burn { steps: 5, cost: 10 }));
        sim.spawn("b", Box::new(Burn { steps: 5, cost: 10 }));
        let out = sim.run_to_idle();
        assert!(out.completed_all());
        assert_eq!(sim.now(), 100);
    }

    #[test]
    fn two_tasks_two_contexts_run_in_parallel() {
        let mut sim = Simulator::new(2);
        sim.spawn("a", Box::new(Burn { steps: 5, cost: 10 }));
        sim.spawn("b", Box::new(Burn { steps: 5, cost: 10 }));
        let out = sim.run_to_idle();
        assert!(out.completed_all());
        assert_eq!(sim.now(), 50);
        let stats = sim.stats();
        assert_eq!(stats.busy, vec![50, 50]);
        assert!((stats.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn round_robin_interleaves_fairly() {
        // Two equal tasks on one context should finish at (almost) the
        // same time, not one after the other, thanks to per-step
        // round-robin.
        let mut sim = Simulator::new(1);
        let a = sim.spawn(
            "a",
            Box::new(Burn {
                steps: 100,
                cost: 1,
            }),
        );
        let b = sim.spawn(
            "b",
            Box::new(Burn {
                steps: 100,
                cost: 1,
            }),
        );
        sim.run_to_idle();
        let fa = sim.task_stats(a).completed_at.unwrap();
        let fb = sim.task_stats(b).completed_at.unwrap();
        assert!((fa as i64 - fb as i64).abs() <= 1, "fa={fa} fb={fb}");
    }

    #[test]
    fn time_limit_stops_midway() {
        let mut sim = Simulator::new(1);
        sim.spawn(
            "burn",
            Box::new(Burn {
                steps: 100,
                cost: 10,
            }),
        );
        let out = sim.run(Some(500));
        assert_eq!(out.reason, StopReason::TimeLimit);
        assert_eq!(out.live_tasks, 1);
        assert_eq!(sim.now(), 500);
        // Resume to completion.
        let out = sim.run_to_idle();
        assert!(out.completed_all());
        assert_eq!(sim.now(), 1000);
    }

    struct Pipe {
        rx: channel::Receiver<u64>,
        tx: Option<channel::Sender<u64>>,
        cost: VTime,
        stash: Option<u64>,
        forwarded: u64,
    }
    impl Task for Pipe {
        fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
            if let Some(v) = self.stash.take() {
                if let Some(tx) = &self.tx {
                    if let Err(v) = tx.try_send(v, ctx) {
                        self.stash = Some(v);
                        return Step::blocked(0);
                    }
                }
                self.forwarded += 1;
                return Step::yielded(self.cost);
            }
            match self.rx.try_recv(ctx) {
                Recv::Value(v) => {
                    self.stash = Some(v);
                    Step::yielded(0)
                }
                Recv::Empty => Step::blocked(0),
                Recv::Closed => {
                    if let Some(tx) = &self.tx {
                        tx.close(ctx);
                    }
                    Step::done(0)
                }
            }
        }
    }

    struct Source {
        tx: channel::Sender<u64>,
        n: u64,
        cost: VTime,
    }
    impl Task for Source {
        fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
            if self.n == 0 {
                self.tx.close(ctx);
                return Step::done(0);
            }
            match self.tx.try_send(self.n, ctx) {
                Ok(()) => {
                    self.n -= 1;
                    Step::yielded(self.cost)
                }
                Err(_) => Step::blocked(0),
            }
        }
    }

    /// Builds source -> pipe -> sink with the given per-stage costs and
    /// returns (makespan, forwarded_count_of_last_stage).
    fn run_pipeline(contexts: usize, items: u64, costs: &[VTime], cap: usize) -> VTime {
        let mut sim = Simulator::new(contexts);
        let (tx0, mut rx_prev) = channel::bounded(cap);
        sim.spawn(
            "source",
            Box::new(Source {
                tx: tx0,
                n: items,
                cost: costs[0],
            }),
        );
        for (i, &c) in costs[1..].iter().enumerate() {
            let last = i == costs.len() - 2;
            if last {
                sim.spawn(
                    format!("stage{i}"),
                    Box::new(Pipe {
                        rx: rx_prev.clone(),
                        tx: None,
                        cost: c,
                        stash: None,
                        forwarded: 0,
                    }),
                );
            } else {
                let (tx, rx) = channel::bounded(cap);
                sim.spawn(
                    format!("stage{i}"),
                    Box::new(Pipe {
                        rx: rx_prev.clone(),
                        tx: Some(tx),
                        cost: c,
                        stash: None,
                        forwarded: 0,
                    }),
                );
                rx_prev = rx;
            }
        }
        let out = sim.run_to_idle();
        assert!(out.completed_all(), "{out:?}");
        sim.now()
    }

    #[test]
    fn pipeline_rate_bounded_by_slowest_stage_when_parallel() {
        // Stages cost 10 / 30 / 10 per item; with 3 contexts the
        // pipeline runs at the bottleneck rate 1/30 (+ fill time).
        let t = run_pipeline(3, 200, &[10, 30, 10], 8);
        let ideal = 200 * 30;
        assert!(t >= ideal as VTime, "t={t}");
        assert!(t < (ideal as f64 * 1.05) as VTime, "t={t} ideal={ideal}");
    }

    #[test]
    fn pipeline_on_one_context_costs_total_work() {
        // One context: rate = 1 / Σp, i.e. makespan ≈ items * 50.
        let t = run_pipeline(1, 200, &[10, 30, 10], 8);
        let total = 200 * 50;
        assert!(t >= total as VTime);
        assert!(t < (total as f64 * 1.02) as VTime, "t={t}");
    }

    #[test]
    fn bounded_buffer_throttles_fast_producer() {
        // Producer cost 1, consumer cost 100, tiny buffer: producer must
        // finish at ~ the consumer's pace, not at its own.
        let mut sim = Simulator::new(2);
        let (tx, rx) = channel::bounded(2);
        let p = sim.spawn("producer", Box::new(Source { tx, n: 50, cost: 1 }));
        sim.spawn(
            "consumer",
            Box::new(Pipe {
                rx,
                tx: None,
                cost: 100,
                stash: None,
                forwarded: 0,
            }),
        );
        sim.run_to_idle();
        let p_done = sim.task_stats(p).completed_at.unwrap();
        // Unthrottled the producer would finish at ~50; throttled it
        // finishes within a few buffer-slots of the consumer's pace.
        assert!(p_done > 45 * 100, "producer finished too early: {p_done}");
    }

    #[test]
    fn deadlock_detected() {
        // A lone consumer on a channel nobody writes to (sender alive
        // but never stepped because it blocks on another empty channel).
        struct Waiter {
            rx: channel::Receiver<u64>,
            _tx_keepalive: channel::Sender<u64>,
        }
        impl Task for Waiter {
            fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
                match self.rx.try_recv(ctx) {
                    Recv::Value(_) => Step::yielded(1),
                    Recv::Empty => Step::blocked(0),
                    Recv::Closed => Step::done(0),
                }
            }
        }
        let mut sim = Simulator::new(2);
        let (tx_a, rx_a) = channel::bounded(1);
        let (tx_b, rx_b) = channel::bounded(1);
        sim.spawn(
            "w1",
            Box::new(Waiter {
                rx: rx_a,
                _tx_keepalive: tx_b,
            }),
        );
        sim.spawn(
            "w2",
            Box::new(Waiter {
                rx: rx_b,
                _tx_keepalive: tx_a,
            }),
        );
        let out = sim.run_to_idle();
        assert_eq!(out.reason, StopReason::Deadlock);
        assert_eq!(out.live_tasks, 2);
    }

    #[test]
    fn determinism_identical_runs() {
        let t1 = run_pipeline(4, 300, &[7, 13, 5, 11], 6);
        let t2 = run_pipeline(4, 300, &[7, 13, 5, 11], 6);
        assert_eq!(t1, t2);
    }

    #[test]
    fn spawned_tasks_execute() {
        struct Parent {
            spawned: bool,
        }
        impl Task for Parent {
            fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
                if !self.spawned {
                    self.spawned = true;
                    ctx.spawn("child", Box::new(Burn { steps: 3, cost: 5 }));
                }
                Step::done(1)
            }
        }
        let mut sim = Simulator::new(1);
        sim.spawn("parent", Box::new(Parent { spawned: false }));
        let out = sim.run_to_idle();
        assert!(out.completed_all());
        assert_eq!(sim.now(), 1 + 15);
        assert_eq!(sim.all_task_stats().count(), 2);
    }

    #[test]
    fn sleeping_task_wakes_on_timer_without_occupying_context() {
        // A sleeper plus a burner on ONE context: the burner must run at
        // full speed while the sleeper is parked.
        struct Sleeper {
            naps: u32,
        }
        impl Task for Sleeper {
            fn step(&mut self, _: &mut TaskCtx<'_>) -> Step {
                if self.naps == 0 {
                    return Step::done(0);
                }
                self.naps -= 1;
                Step::sleep(1, 100)
            }
        }
        let mut sim = Simulator::new(1);
        let s = sim.spawn("sleeper", Box::new(Sleeper { naps: 3 }));
        let b = sim.spawn("burn", Box::new(Burn { steps: 50, cost: 5 }));
        let out = sim.run_to_idle();
        assert!(out.completed_all());
        // Sleeper: 3 naps * (1 busy + 100 idle) + final 0-cost step.
        assert!(sim.task_stats(s).completed_at.unwrap() >= 303);
        assert_eq!(sim.task_stats(s).active, 3);
        // Burner unimpeded by the parked sleeper: ~250 units of work
        // finishing around t=253 (3 units stolen by sleeper steps).
        assert!(sim.task_stats(b).completed_at.unwrap() <= 260);
    }

    #[test]
    fn sleeping_task_can_be_woken_early() {
        struct LongSleeper;
        impl Task for LongSleeper {
            fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
                if ctx.now() == 0 {
                    Step::sleep(0, 1_000_000)
                } else {
                    Step::done(0)
                }
            }
        }
        struct Waker {
            target: TaskId,
        }
        impl Task for Waker {
            fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
                ctx.wake(self.target);
                Step::done(10)
            }
        }
        let mut sim = Simulator::new(2);
        let sleeper = sim.spawn("sleeper", Box::new(LongSleeper));
        sim.spawn("waker", Box::new(Waker { target: sleeper }));
        let out = sim.run_to_idle();
        assert!(out.completed_all());
        // Woken at t=10, not at t=1'000'000.
        assert_eq!(sim.task_stats(sleeper).completed_at, Some(10));
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn zero_cost_spin_panics() {
        struct Spinner;
        impl Task for Spinner {
            fn step(&mut self, _: &mut TaskCtx<'_>) -> Step {
                Step::yielded(0)
            }
        }
        let mut sim = Simulator::with_config(SimConfig {
            contexts: 1,
            max_zero_cost_spins: 100,
            ..SimConfig::default()
        });
        sim.spawn("spinner", Box::new(Spinner));
        sim.run_to_idle();
    }

    #[test]
    fn trace_records_busy_intervals_when_enabled() {
        let mut sim = Simulator::with_config(SimConfig {
            contexts: 2,
            trace: true,
            ..SimConfig::default()
        });
        sim.spawn("a", Box::new(Burn { steps: 3, cost: 10 }));
        sim.spawn("b", Box::new(Burn { steps: 2, cost: 10 }));
        sim.run_to_idle();
        let spans = sim.trace();
        assert_eq!(spans.len(), 5, "one span per costed step");
        assert!(spans.iter().all(|s| s.end - s.start == 10));
        let gantt = crate::trace::render_gantt(spans, 2, 20);
        assert!(gantt.contains("ctx  0"));
        assert!(gantt.contains("ctx  1"));
        // Disabled by default.
        let mut quiet = Simulator::new(1);
        quiet.spawn("a", Box::new(Burn { steps: 2, cost: 5 }));
        quiet.run_to_idle();
        assert!(quiet.trace().is_empty());
    }

    #[test]
    fn utilization_counts_only_busy_time() {
        let mut sim = Simulator::new(4);
        sim.spawn(
            "a",
            Box::new(Burn {
                steps: 10,
                cost: 10,
            }),
        );
        sim.run_to_idle();
        // One task on four contexts: utilization = 1/4.
        assert!((sim.stats().utilization() - 0.25).abs() < 1e-12);
    }
}
