//! Execution traces: per-step busy intervals and an ASCII Gantt
//! renderer, for debugging schedules and illustrating the serialization
//! the paper analyzes (a shared pivot shows up as one long lane while
//! the other contexts idle).

use crate::{TaskId, VTime};
use serde::{Deserialize, Serialize};

/// One busy interval: a task occupying a context for `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// The executing task.
    pub task: TaskId,
    /// The context it ran on.
    pub context: usize,
    /// Step start (virtual time).
    pub start: VTime,
    /// Step end (`start + cost`).
    pub end: VTime,
}

/// Renders spans as one ASCII lane per context. Each column covers
/// `(t_max - t_min) / width` virtual time; a cell shows the last task
/// active in that slice (as a letter cycling `a..z`), or `.` for idle.
pub fn render_gantt(spans: &[Span], contexts: usize, width: usize) -> String {
    if spans.is_empty() || width == 0 {
        return String::from("(no trace)\n");
    }
    let t0 = spans.iter().map(|s| s.start).min().unwrap_or(0);
    let t1 = spans.iter().map(|s| s.end).max().unwrap_or(1).max(t0 + 1);
    let scale = (t1 - t0) as f64 / width as f64;
    let mut lanes = vec![vec![b'.'; width]; contexts];
    for s in spans {
        if s.context >= contexts {
            continue;
        }
        let glyph = b'a' + (s.task.index() % 26) as u8;
        let c0 = (((s.start - t0) as f64) / scale) as usize;
        let c1 = ((((s.end - t0) as f64) / scale).ceil() as usize).clamp(c0 + 1, width);
        for cell in &mut lanes[s.context][c0.min(width - 1)..c1] {
            *cell = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "t = {t0}..{t1} ({} per col)\n",
        ((t1 - t0) as f64 / width as f64).round()
    ));
    for (i, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("ctx {i:>2} |{}|\n", String::from_utf8_lossy(lane)));
    }
    out
}

/// Busy fraction per context over the traced interval.
pub fn utilization_per_context(spans: &[Span], contexts: usize) -> Vec<f64> {
    let mut busy = vec![0u128; contexts];
    let t0 = spans.iter().map(|s| s.start).min().unwrap_or(0);
    let t1 = spans.iter().map(|s| s.end).max().unwrap_or(0);
    for s in spans {
        if s.context < contexts {
            busy[s.context] += (s.end - s.start) as u128;
        }
    }
    let span = (t1 - t0).max(1) as f64;
    busy.into_iter().map(|b| b as f64 / span).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(task: usize, context: usize, start: VTime, end: VTime) -> Span {
        Span {
            task: TaskId(task),
            context,
            start,
            end,
        }
    }

    #[test]
    fn gantt_marks_busy_and_idle() {
        let spans = vec![span(0, 0, 0, 50), span(1, 1, 50, 100)];
        let g = render_gantt(&spans, 2, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        // Context 0 busy in the first half, idle after.
        assert!(lines[1].contains("aaaaa"));
        assert!(lines[1].contains('.'));
        // Context 1 the mirror image with task 'b'.
        assert!(lines[2].contains("bbbbb"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(render_gantt(&[], 4, 40), "(no trace)\n");
    }

    #[test]
    fn utilization_per_context_fractions() {
        let spans = vec![span(0, 0, 0, 100), span(1, 1, 0, 25)];
        let u = utilization_per_context(&spans, 2);
        assert!((u[0] - 1.0).abs() < 1e-12);
        assert!((u[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_contexts_ignored() {
        let spans = vec![span(0, 7, 0, 10)];
        let u = utilization_per_context(&spans, 2);
        assert_eq!(u, vec![0.0, 0.0]);
        let g = render_gantt(&spans, 2, 10);
        assert!(g.contains("ctx  0"));
    }
}
