//! Bounded single-threaded channels with blocking semantics.
//!
//! These model the finite inter-operator buffers of the paper's engine
//! ("We assume that buffering between operators is sufficient to smooth
//! out burstiness" — but *finite*, so "slow consumers throttle
//! producers"). A full channel makes `try_send` fail and registers the
//! producer as a waiter; a successful `try_recv` then wakes it, and vice
//! versa.
//!
//! The simulator is single-threaded, so channels are `Rc<RefCell<..>>`
//! handles. Senders and receivers may both be cloned: a stage can have
//! several upstream producers, and the engine's shared pivot keeps one
//! dedicated output channel per consumer.

use crate::task::{TaskCtx, TaskId};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    closed: bool,
    senders: usize,
    waiting_senders: Vec<TaskId>,
    waiting_receivers: Vec<TaskId>,
}

/// Producer half of a bounded channel.
pub struct Sender<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Consumer half of a bounded channel.
pub struct Receiver<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Result of a receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv<T> {
    /// A value was dequeued.
    Value(T),
    /// Channel currently empty; the caller was registered as a waiter
    /// and should return [`crate::Step::blocked`].
    Empty,
    /// Channel closed and drained; no more values will ever arrive.
    Closed,
}

/// Creates a bounded channel with room for `capacity` in-flight items.
///
/// # Panics
///
/// Panics if `capacity` is zero (a zero-capacity channel can never make
/// progress under step-granularity rendezvous).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be at least 1");
    let inner = Rc::new(RefCell::new(Inner {
        queue: VecDeque::with_capacity(capacity),
        capacity,
        closed: false,
        senders: 1,
        waiting_senders: Vec::new(),
        waiting_receivers: Vec::new(),
    }));
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Attempts to enqueue `value`. On failure (channel full) the calling
    /// task is registered as a waiter and gets the value back; it should
    /// stash it and return [`crate::Step::blocked`].
    ///
    /// Sending on a closed channel drops the value silently and reports
    /// success; this only happens when a consumer aborted early, in
    /// which case producers are expected to notice via engine-level
    /// cancellation.
    pub fn try_send(&self, value: T, ctx: &mut TaskCtx<'_>) -> Result<(), T> {
        let mut inner = self.inner.borrow_mut();
        if inner.closed {
            return Ok(());
        }
        if inner.queue.len() >= inner.capacity {
            let id = ctx.task_id();
            if !inner.waiting_senders.contains(&id) {
                inner.waiting_senders.push(id);
            }
            return Err(value);
        }
        inner.queue.push_back(value);
        for id in inner.waiting_receivers.drain(..) {
            ctx.wake(id);
        }
        Ok(())
    }

    /// Space remaining before the channel throttles its producers.
    pub fn free_slots(&self) -> usize {
        let inner = self.inner.borrow();
        inner.capacity.saturating_sub(inner.queue.len())
    }

    /// Marks this producer as finished. When the last clone of the
    /// sender closes, the channel is closed and waiting receivers are
    /// woken so they can observe [`Recv::Closed`].
    pub fn close(&self, ctx: &mut TaskCtx<'_>) {
        let mut inner = self.inner.borrow_mut();
        inner.senders = inner.senders.saturating_sub(1);
        if inner.senders == 0 {
            inner.closed = true;
            for id in inner.waiting_receivers.drain(..) {
                ctx.wake(id);
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Attempts to dequeue a value. On [`Recv::Empty`] the calling task
    /// is registered as a waiter and should return
    /// [`crate::Step::blocked`].
    pub fn try_recv(&self, ctx: &mut TaskCtx<'_>) -> Recv<T> {
        let mut inner = self.inner.borrow_mut();
        match inner.queue.pop_front() {
            Some(v) => {
                for id in inner.waiting_senders.drain(..) {
                    ctx.wake(id);
                }
                Recv::Value(v)
            }
            None if inner.closed => Recv::Closed,
            None => {
                let id = ctx.task_id();
                if !inner.waiting_receivers.contains(&id) {
                    inner.waiting_receivers.push(id);
                }
                Recv::Empty
            }
        }
    }

    /// Peeks at queue length (for diagnostics / adaptive operators).
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Whether the queue is currently empty (the channel may still be
    /// open and receive more values).
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().queue.is_empty()
    }

    /// Whether the channel is closed *and* drained.
    pub fn is_finished(&self) -> bool {
        let inner = self.inner.borrow();
        inner.closed && inner.queue.is_empty()
    }

    /// Closes the channel from the consumer side (query abort): buffered
    /// values are dropped, subsequent sends succeed-and-drop (producers
    /// run to completion into the void instead of blocking on a reader
    /// that will never come), and every waiter — sender or receiver
    /// clone — is woken so it can observe the closure.
    pub fn close(&self, ctx: &mut TaskCtx<'_>) {
        let mut inner = self.inner.borrow_mut();
        inner.closed = true;
        inner.queue.clear();
        for id in inner.waiting_senders.drain(..) {
            ctx.wake(id);
        }
        for id in inner.waiting_receivers.drain(..) {
            ctx.wake(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Task, TaskId};

    /// Builds a TaskCtx over scratch buffers for direct channel testing.
    fn with_ctx<R>(id: usize, f: impl FnOnce(&mut TaskCtx<'_>) -> R) -> (R, Vec<TaskId>) {
        let mut wakes = Vec::new();
        let mut spawns: Vec<(String, Box<dyn Task>)> = Vec::new();
        let mut progress = 0.0;
        let mut ctx = TaskCtx {
            task_id: TaskId(id),
            now: 0,
            wakes: &mut wakes,
            spawns: &mut spawns,
            progress: &mut progress,
        };
        let r = f(&mut ctx);
        assert!(spawns.is_empty(), "channel tests never spawn");
        (r, wakes)
    }

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = bounded(2);
        let (res, _) = with_ctx(0, |ctx| tx.try_send(42u32, ctx));
        assert!(res.is_ok());
        let (got, _) = with_ctx(1, |ctx| rx.try_recv(ctx));
        assert_eq!(got, Recv::Value(42));
    }

    #[test]
    fn full_channel_blocks_and_registers_sender() {
        let (tx, rx) = bounded(1);
        let (_, _) = with_ctx(0, |ctx| tx.try_send(1u32, ctx));
        let (res, _) = with_ctx(0, |ctx| tx.try_send(2u32, ctx));
        assert_eq!(res, Err(2));
        // Receiving wakes the registered sender.
        let (got, wakes) = with_ctx(1, |ctx| rx.try_recv(ctx));
        assert_eq!(got, Recv::Value(1));
        assert_eq!(wakes, vec![TaskId(0)]);
    }

    #[test]
    fn empty_channel_blocks_and_send_wakes_receiver() {
        let (tx, rx) = bounded(1);
        let (got, _) = with_ctx(5, |ctx| rx.try_recv(ctx));
        assert_eq!(got, Recv::<u32>::Empty);
        let (_, wakes) = with_ctx(0, |ctx| tx.try_send(7u32, ctx));
        assert_eq!(wakes, vec![TaskId(5)]);
    }

    #[test]
    fn close_wakes_receivers_and_drains() {
        let (tx, rx) = bounded(2);
        let (_, _) = with_ctx(0, |ctx| tx.try_send(1u32, ctx));
        let (got, _) = with_ctx(1, |ctx| rx.try_recv(ctx));
        assert_eq!(got, Recv::Value(1));
        let (_, _) = with_ctx(1, |ctx| rx.try_recv(ctx)); // registers waiter
        let ((), wakes) = with_ctx(0, |ctx| tx.close(ctx));
        assert_eq!(wakes, vec![TaskId(1)]);
        let (got, _) = with_ctx(1, |ctx| rx.try_recv(ctx));
        assert_eq!(got, Recv::<u32>::Closed);
    }

    #[test]
    fn close_waits_for_all_sender_clones() {
        let (tx, rx) = bounded::<u32>(1);
        let tx2 = tx.clone();
        let ((), _) = with_ctx(0, |ctx| tx.close(ctx));
        assert!(!rx.is_finished());
        let ((), _) = with_ctx(1, |ctx| tx2.close(ctx));
        assert!(rx.is_finished());
    }

    #[test]
    fn send_after_close_is_dropped() {
        let (tx, rx) = bounded(1);
        let tx2 = tx.clone();
        let ((), _) = with_ctx(0, |ctx| {
            tx.close(ctx);
            tx2.close(ctx);
        });
        let (res, _) = with_ctx(0, |ctx| tx2.try_send(9u32, ctx));
        assert!(res.is_ok());
        assert!(rx.is_finished());
    }

    #[test]
    fn waiter_registered_once() {
        let (tx, rx) = bounded(1);
        let (_, _) = with_ctx(0, |ctx| tx.try_send(1u32, ctx));
        // Two failed sends from the same task register a single waiter.
        let (_, _) = with_ctx(0, |ctx| {
            let _ = tx.try_send(2u32, ctx);
            let _ = tx.try_send(2u32, ctx);
        });
        let (_, wakes) = with_ctx(1, |ctx| rx.try_recv(ctx));
        assert_eq!(wakes, vec![TaskId(0)]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = bounded::<u32>(0);
    }

    #[test]
    fn receiver_close_cancels_producers() {
        let (tx, rx) = bounded(1);
        // Fill the channel; a second send registers the producer waiter.
        let (_, _) = with_ctx(0, |ctx| tx.try_send(1u32, ctx));
        let (res, _) = with_ctx(0, |ctx| tx.try_send(2u32, ctx));
        assert_eq!(res, Err(2));
        // Consumer aborts: buffered value dropped, producer woken.
        let ((), wakes) = with_ctx(1, |ctx| rx.close(ctx));
        assert_eq!(wakes, vec![TaskId(0)]);
        // The retried send now succeeds (and is dropped).
        let (res, _) = with_ctx(0, |ctx| tx.try_send(2u32, ctx));
        assert!(res.is_ok());
        assert!(rx.is_finished());
        let (got, _) = with_ctx(1, |ctx| rx.try_recv(ctx));
        assert_eq!(got, Recv::<u32>::Closed);
    }

    #[test]
    fn receiver_double_close_is_idempotent() {
        let (tx, rx) = bounded::<u32>(1);
        let ((), wakes) = with_ctx(1, |ctx| {
            rx.close(ctx);
            rx.close(ctx); // second abort: no panic, no underflow
        });
        assert!(wakes.is_empty(), "no waiters were registered");
        assert!(rx.is_finished());
        // The producer side still shuts down cleanly afterwards.
        let ((), _) = with_ctx(0, |ctx| tx.close(ctx));
        let (got, _) = with_ctx(1, |ctx| rx.try_recv(ctx));
        assert_eq!(got, Recv::<u32>::Closed);
    }

    #[test]
    fn receiver_close_races_waiting_receiver_clone() {
        // A receiver clone parked on an empty channel must be woken by
        // a sibling clone's abort, and then observe Closed — the abort
        // path wakes *both* waiter lists.
        let (_tx, rx) = bounded::<u32>(1);
        let rx2 = rx.clone();
        let (got, _) = with_ctx(7, |ctx| rx2.try_recv(ctx));
        assert_eq!(got, Recv::<u32>::Empty);
        let ((), wakes) = with_ctx(1, |ctx| rx.close(ctx));
        assert_eq!(wakes, vec![TaskId(7)]);
        let (got, _) = with_ctx(7, |ctx| rx2.try_recv(ctx));
        assert_eq!(got, Recv::<u32>::Closed);
    }

    #[test]
    fn sender_close_after_receiver_abort_does_not_reopen() {
        // Consumer aborts first; the surviving producer's own close must
        // leave the channel closed (no counter underflow resurrecting
        // it) and later sends still succeed-and-drop.
        let (tx, rx) = bounded(1);
        let ((), _) = with_ctx(1, |ctx| rx.close(ctx));
        let ((), _) = with_ctx(0, |ctx| tx.close(ctx));
        let (res, _) = with_ctx(0, |ctx| tx.try_send(3u32, ctx));
        assert!(res.is_ok(), "send into the corpse succeeds-and-drops");
        assert!(rx.is_finished());
    }

    #[test]
    fn len_and_free_slots_track_queue() {
        let (tx, rx) = bounded(3);
        assert_eq!(tx.free_slots(), 3);
        assert!(rx.is_empty());
        let (_, _) = with_ctx(0, |ctx| {
            tx.try_send(1u32, ctx).unwrap();
            tx.try_send(2u32, ctx).unwrap();
        });
        assert_eq!(rx.len(), 2);
        assert_eq!(tx.free_slots(), 1);
    }
}
