//! Integration: the simulator's core guarantee — identical inputs
//! produce bit-identical schedules — plus the throttling behavior the
//! work-sharing model depends on (bounded channels propagate back
//! pressure from slow consumers to producers).

use cordoba_sim::{channel, Simulator, Step, Task, TaskCtx, VTime};

struct Producer {
    tx: channel::Sender<u64>,
    left: u64,
    step_cost: VTime,
}

impl Task for Producer {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        if self.left == 0 {
            self.tx.close(ctx);
            return Step::done(0);
        }
        match self.tx.try_send(self.left, ctx) {
            Ok(()) => {
                self.left -= 1;
                Step::yielded(self.step_cost)
            }
            Err(_) => Step::blocked(0),
        }
    }
}

struct Consumer {
    rx: channel::Receiver<u64>,
    seen: u64,
    step_cost: VTime,
}

impl Task for Consumer {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        match self.rx.try_recv(ctx) {
            channel::Recv::Value(_) => {
                self.seen += 1;
                Step::yielded(self.step_cost)
            }
            channel::Recv::Empty => Step::blocked(0),
            channel::Recv::Closed => Step::done(0),
        }
    }
}

/// Runs a `stages`-deep relay pipeline and returns (finish time, spans).
fn run_pipeline(contexts: usize, items: u64, costs: &[VTime]) -> (VTime, usize) {
    let mut sim = Simulator::new(contexts);
    let (tx, mut rx) = channel::bounded(8);
    sim.spawn(
        "producer",
        Box::new(Producer {
            tx,
            left: items,
            step_cost: costs[0],
        }),
    );
    for (i, &c) in costs[1..costs.len() - 1].iter().enumerate() {
        let (tx_next, rx_next) = channel::bounded(8);
        struct Relay {
            rx: channel::Receiver<u64>,
            tx: channel::Sender<u64>,
            pending: Option<u64>,
            cost: VTime,
        }
        impl Task for Relay {
            fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
                let v = match self.pending.take() {
                    Some(v) => v,
                    None => match self.rx.try_recv(ctx) {
                        channel::Recv::Value(v) => v,
                        channel::Recv::Empty => return Step::blocked(0),
                        channel::Recv::Closed => {
                            self.tx.close(ctx);
                            return Step::done(0);
                        }
                    },
                };
                match self.tx.try_send(v, ctx) {
                    Ok(()) => Step::yielded(self.cost),
                    Err(v) => {
                        self.pending = Some(v);
                        Step::blocked(0)
                    }
                }
            }
        }
        sim.spawn(
            format!("relay{i}"),
            Box::new(Relay {
                rx,
                tx: tx_next,
                pending: None,
                cost: c,
            }),
        );
        rx = rx_next;
    }
    sim.spawn(
        "consumer",
        Box::new(Consumer {
            rx,
            seen: 0,
            step_cost: *costs.last().unwrap(),
        }),
    );
    let outcome = sim.run_to_idle();
    assert!(outcome.completed_all(), "pipeline deadlocked: {outcome:?}");
    (sim.now(), sim.trace().len())
}

#[test]
fn identical_runs_produce_identical_schedules() {
    for contexts in [1usize, 2, 4, 32] {
        let a = run_pipeline(contexts, 500, &[7, 3, 5]);
        let b = run_pipeline(contexts, 500, &[7, 3, 5]);
        assert_eq!(a, b, "divergent schedule on {contexts} contexts");
    }
}

#[test]
fn slow_consumer_throttles_producer() {
    // Finite buffering: a consumer 10x slower than its producer forces
    // the pipeline to finish at the consumer's rate (the model's "slow
    // consumers throttle producers" premise).
    let items = 400u64;
    let (fast_t, _) = run_pipeline(2, items, &[5, 5]);
    let (slow_t, _) = run_pipeline(2, items, &[5, 50]);
    assert!(
        slow_t >= items * 50,
        "consumer-bound time {slow_t} below its sequential floor"
    );
    assert!(
        slow_t > fast_t * 5,
        "back pressure missing: slow {slow_t} vs fast {fast_t}"
    );
}

#[test]
fn added_contexts_never_slow_a_pipeline_down() {
    let mut prev = VTime::MAX;
    for contexts in [1usize, 2, 3, 4] {
        let (t, _) = run_pipeline(contexts, 300, &[4, 4, 4, 4]);
        assert!(
            t <= prev,
            "{contexts} contexts slower than {} ({t} vs {prev})",
            contexts - 1
        );
        prev = t;
    }
}
