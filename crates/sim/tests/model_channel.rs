//! Model-checks the sim channel's close-vs-send races.
//!
//! Sim tasks are cooperative and single-threaded, so a "race" between a
//! producer and a consumer is fully described by the order their steps
//! interleave. `shuttle_lite::explore::interleavings` enumerates every
//! merge order of the per-task op sequences — over 1 000 per scenario —
//! and each one must uphold the channel contract:
//!
//! * no operation ever panics (no `RefCell` double-borrow, no underflow),
//! * sends after a consumer abort succeed-and-drop, never block forever,
//! * received values are a FIFO (per-sender in-order) subset of the sent
//!   ones, and
//! * the channel reports closed only when every sender clone has closed.

use cordoba_sim::channel::{self, Recv};
use cordoba_sim::DetachedCtx;
use shuttle_lite::explore::{count, interleavings};

/// The acceptance floor per scenario.
const MIN_INTERLEAVINGS: usize = 1_000;

/// Consumer aborts (Receiver::close) racing a producer mid-stream:
/// 7 producer ops (6 send attempts + close) against 6 consumer ops
/// (3 recvs, abort, 2 post-abort recvs) — C(13,6) = 1716 interleavings.
#[test]
fn consumer_abort_vs_producer_sends_never_panics() {
    let lens = [7usize, 6];
    assert!(count(&lens) >= MIN_INTERLEAVINGS);
    let (explored, exhausted) = interleavings(&lens, usize::MAX, |seq| {
        let mut dctx = DetachedCtx::new();
        let (tx, rx) = channel::bounded::<u32>(2);
        let mut next_send = 0u32; // next value to offer
        let mut producer_op = 0usize; // 0..6 send attempts, 6 = close
        let mut consumer_op = 0usize;
        let mut received: Vec<u32> = Vec::new();
        let mut receiver_closed = false;
        let mut sender_closed = false;
        for &t in seq {
            match t {
                0 => {
                    if producer_op < 6 {
                        // A backpressured send (Err) retries the same
                        // value on the producer's next step, exactly as
                        // a blocked sim task would after its wake.
                        if let Err(v) = tx.try_send(next_send, &mut dctx.ctx(0)) {
                            assert!(
                                !receiver_closed,
                                "seq {seq:?}: send of {v} blocked after consumer abort \
                                 (must succeed-and-drop)"
                            );
                        } else {
                            next_send += 1;
                        }
                    } else {
                        tx.close(&mut dctx.ctx(0));
                        sender_closed = true;
                    }
                    producer_op += 1;
                }
                _ => {
                    if consumer_op == 3 {
                        rx.close(&mut dctx.ctx(1));
                        receiver_closed = true;
                    } else {
                        match rx.try_recv(&mut dctx.ctx(1)) {
                            Recv::Value(v) => {
                                assert!(
                                    !receiver_closed,
                                    "seq {seq:?}: value {v} leaked out of an aborted channel"
                                );
                                received.push(v);
                            }
                            Recv::Closed => {
                                assert!(
                                    receiver_closed || sender_closed,
                                    "seq {seq:?}: Closed before either side closed"
                                );
                            }
                            Recv::Empty => {}
                        }
                    }
                    consumer_op += 1;
                }
            }
        }
        // FIFO: the consumer saw a strict prefix of the sent sequence.
        let expected: Vec<u32> = (0..received.len() as u32).collect();
        assert_eq!(
            received, expected,
            "seq {seq:?}: out-of-order or skipped delivery"
        );
        let _ = dctx.drain_wakes();
    });
    assert!(exhausted);
    assert!(
        explored >= MIN_INTERLEAVINGS,
        "explored only {explored} interleavings"
    );
}

/// Two sender clones racing their closes against a draining consumer:
/// lens [3, 3, 5] — 11!/(3!·3!·5!) = 9240 interleavings. The channel
/// must report `Closed` only after *both* clones have closed, and every
/// sent value must be received in per-sender order.
#[test]
fn last_clone_close_vs_drain_never_loses_values() {
    let lens = [3usize, 3, 5];
    assert!(count(&lens) >= MIN_INTERLEAVINGS);
    let (explored, exhausted) = interleavings(&lens, usize::MAX, |seq| {
        let mut dctx = DetachedCtx::new();
        let (tx_a, rx) = channel::bounded::<u32>(4);
        let tx_b = tx_a.clone();
        // Sender A sends 10, 11 then closes; sender B sends 20, 21 then
        // closes; the consumer drains with 5 recv attempts.
        let mut ops = [0usize; 3];
        let mut closed_senders = 0usize;
        let mut received: Vec<u32> = Vec::new();
        for &t in seq {
            match t {
                0 | 1 => {
                    let (tx, base) = if t == 0 { (&tx_a, 10) } else { (&tx_b, 20) };
                    if ops[t] < 2 {
                        // Capacity 4 fits all four values: sends never
                        // backpressure in this scenario.
                        assert!(
                            tx.try_send(base + ops[t] as u32, &mut dctx.ctx(t)).is_ok(),
                            "seq {seq:?}: unexpected backpressure"
                        );
                    } else {
                        tx.close(&mut dctx.ctx(t));
                        closed_senders += 1;
                    }
                    ops[t] += 1;
                }
                _ => {
                    match rx.try_recv(&mut dctx.ctx(2)) {
                        Recv::Value(v) => received.push(v),
                        Recv::Closed => assert_eq!(
                            closed_senders, 2,
                            "seq {seq:?}: channel closed with a sender clone still live"
                        ),
                        Recv::Empty => {}
                    }
                    ops[2] += 1;
                }
            }
        }
        // Per-sender FIFO: each sender's values arrive in its order.
        let a: Vec<u32> = received.iter().copied().filter(|v| *v < 20).collect();
        let b: Vec<u32> = received.iter().copied().filter(|v| *v >= 20).collect();
        assert!(
            a == [10, 11][..a.len()],
            "seq {seq:?}: sender A out of order: {a:?}"
        );
        assert!(
            b == [20, 21][..b.len()],
            "seq {seq:?}: sender B out of order: {b:?}"
        );
        let _ = dctx.drain_wakes();
    });
    assert!(exhausted);
    assert!(
        explored >= MIN_INTERLEAVINGS,
        "explored only {explored} interleavings"
    );
}

/// Both sides close concurrently — consumer abort racing the last
/// producer close, then more traffic into the corpse: every double-
/// close and send/recv-after-close path must be a clean no-op.
#[test]
fn double_close_from_both_sides_is_idempotent() {
    let lens = [4usize, 4];
    assert!(count(&lens) >= 50); // C(8,4) = 70: small but exhaustive
    let (explored, exhausted) = interleavings(&lens, usize::MAX, |seq| {
        let mut dctx = DetachedCtx::new();
        let (tx, rx) = channel::bounded::<u32>(1);
        let mut ops = [0usize; 2];
        for &t in seq {
            match t {
                0 => {
                    match ops[0] {
                        0 => {
                            let _ = tx.try_send(1, &mut dctx.ctx(0));
                        }
                        1 => tx.close(&mut dctx.ctx(0)),
                        // Sends after our own close: the producer is
                        // gone, but a buggy caller must still not panic.
                        _ => {
                            let _ = tx.try_send(9, &mut dctx.ctx(0));
                        }
                    }
                    ops[0] += 1;
                }
                _ => {
                    match ops[1] {
                        0 => {
                            let _ = rx.try_recv(&mut dctx.ctx(1));
                        }
                        1 => rx.close(&mut dctx.ctx(1)),
                        2 => rx.close(&mut dctx.ctx(1)), // double abort
                        _ => assert!(
                            matches!(rx.try_recv(&mut dctx.ctx(1)), Recv::Closed),
                            "seq {seq:?}: recv after abort must observe Closed"
                        ),
                    }
                    ops[1] += 1;
                }
            }
        }
        let _ = dctx.drain_wakes();
    });
    assert!(exhausted);
    assert_eq!(explored, 70);
}
