//! Integration: every TPC-H plan in the workload must agree with its
//! naive straight-line reimplementation over raw rows — the plans'
//! ground truth — and declare a pivot that is really a sub-plan.

use cordoba_exec::reference;
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::{Catalog, Value};
use cordoba_workload::queries::all;
use cordoba_workload::{naive, CostProfile};

fn catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.004,
        seed: 1234,
        ..TpchConfig::default()
    })
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f64,
        other => panic!("not numeric: {other:?}"),
    }
}

#[test]
fn q6_plan_matches_naive_revenue() {
    let catalog = catalog();
    let rows = reference::execute(&catalog, &cordoba_workload::q6(&CostProfile::paper()).plan);
    assert_eq!(rows.len(), 1, "Q6 aggregates to a single row");
    let revenue = as_f64(rows[0].last().unwrap());
    let expected = naive::q6(&catalog);
    assert!(
        (revenue - expected).abs() < 1e-6 * expected.abs().max(1.0),
        "plan {revenue} vs naive {expected}"
    );
}

#[test]
fn q1_plan_matches_naive_groups() {
    let catalog = catalog();
    let rows = reference::execute(&catalog, &cordoba_workload::q1(&CostProfile::paper()).plan);
    let groups = naive::q1(&catalog);
    assert_eq!(rows.len(), groups.len(), "Q1 group count");
    // naive::q1 returns groups in the plan's sorted output order; each
    // row must carry the group's count and quantity sum somewhere.
    let close = |a: f64, b: f64| (a - b).abs() < 1e-6 * b.abs().max(1.0);
    for (row, g) in rows.iter().zip(&groups) {
        let numeric: Vec<f64> = row
            .iter()
            .filter(|v| matches!(v, Value::Int(_) | Value::Float(_)))
            .map(as_f64)
            .collect();
        assert!(
            numeric.iter().any(|&v| close(v, g.count as f64)),
            "count {} of {g:?} missing from {row:?}",
            g.count
        );
        assert!(
            numeric.iter().any(|&v| close(v, g.sum_qty)),
            "sum_qty {} of {g:?} missing from {row:?}",
            g.sum_qty
        );
    }
}

#[test]
fn every_query_has_a_pivot_contained_in_its_plan() {
    // The engine merges groups by structural equality of the pivot; a
    // pivot that is not a sub-plan of its own query can never match.
    fn contains(plan: &cordoba_exec::PhysicalPlan, needle: &cordoba_exec::PhysicalPlan) -> bool {
        plan == needle || plan.children().iter().any(|c| contains(c, needle))
    }
    for spec in all(&CostProfile::paper()) {
        let pivot = spec
            .pivot
            .as_ref()
            .unwrap_or_else(|| panic!("{} has no pivot", spec.name));
        assert!(
            contains(&spec.plan, pivot),
            "{}'s pivot is not a sub-plan of its plan",
            spec.name
        );
    }
}

#[test]
fn all_queries_return_deterministic_nonempty_results() {
    let catalog = catalog();
    for spec in all(&CostProfile::paper()) {
        let first = reference::execute(&catalog, &spec.plan);
        let second = reference::execute(&catalog, &spec.plan);
        assert!(!first.is_empty(), "{} returned no rows", spec.name);
        assert_eq!(first, second, "{} is nondeterministic", spec.name);
    }
}
