//! The synthetic model workloads of the paper's sensitivity analysis
//! (Section 6).

use cordoba_core::{NodeId, OperatorSpec, PlanSpec};

/// The baseline 3-stage query of Section 6 / Figure 3: bottom `p = 10`,
/// pivot `w = 6, s = 1`, top `p = 10`. Work sharing eliminates ~60% of
/// the query's work; `u = 2.7` processors per query at peak.
pub fn three_stage() -> (PlanSpec, NodeId) {
    three_stage_with_s(1.0)
}

/// The 3-stage query with a configurable pivot output cost `s`
/// (Figure 4 center sweeps s ∈ {0, .25, .5, 1, 2, 4}).
pub fn three_stage_with_s(s: f64) -> (PlanSpec, NodeId) {
    let mut b = PlanSpec::new();
    let bottom = b.add_leaf(OperatorSpec::new("bottom", vec![10.0], vec![]));
    let pivot = b.add_node(OperatorSpec::new("pivot", vec![6.0], vec![s]), vec![bottom]);
    let top = b.add_node(OperatorSpec::new("top", vec![10.0], vec![]), vec![pivot]);
    (b.finish(top).expect("valid pipeline"), pivot)
}

/// The Section 6.3 variant: the top operator split into five balanced
/// stages of `p = 8` each; `moved_below` of them (0..=5) are relocated
/// below the pivot, growing the fraction of work sharing eliminates
/// from 28% to 98%.
///
/// # Panics
///
/// Panics if `moved_below > 5`.
pub fn five_way_split(moved_below: usize) -> (PlanSpec, NodeId) {
    assert!(moved_below <= 5, "only five stages exist");
    let mut b = PlanSpec::new();
    let mut below = b.add_leaf(OperatorSpec::new("bottom", vec![10.0], vec![]));
    for i in 0..moved_below {
        below = b.add_node(
            OperatorSpec::new(format!("below{i}"), vec![8.0], vec![]),
            vec![below],
        );
    }
    let pivot = b.add_node(
        OperatorSpec::new("pivot", vec![6.0], vec![1.0]),
        vec![below],
    );
    let mut above = pivot;
    for i in moved_below..5 {
        above = b.add_node(
            OperatorSpec::new(format!("above{i}"), vec![8.0], vec![]),
            vec![above],
        );
    }
    (b.finish(above).expect("valid pipeline"), pivot)
}

/// Fraction of per-query work that sharing eliminates for
/// [`five_way_split`] `(moved_below)`: everything below the pivot plus
/// the pivot's private work, over the total.
pub fn eliminated_fraction(moved_below: usize) -> f64 {
    let below = 10.0 + 8.0 * moved_below as f64;
    let total = 10.0 + 7.0 + 40.0;
    (below + 6.0) / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_core::QueryModel;

    #[test]
    fn three_stage_matches_paper_anchors() {
        let (plan, pivot) = three_stage();
        let q = QueryModel::new(&plan);
        assert!((q.total_work() - 27.0).abs() < 1e-12);
        assert!((q.peak_utilization() - 2.7).abs() < 1e-12);
        assert_eq!(plan.op(pivot).name, "pivot");
        assert!((plan.op(pivot).w() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn s_sweep_changes_only_pivot_output() {
        for s in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
            let (plan, pivot) = three_stage_with_s(s);
            assert!((plan.op(pivot).s_per_consumer() - s).abs() < 1e-12);
            assert!((plan.op(pivot).w() - 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn five_way_split_fractions_match_paper_labels() {
        // Paper Figure 4 (right) legend: 0/5 (28%) ... 5/5 (98%).
        let expected = [0.28, 0.42, 0.56, 0.70, 0.84, 0.98];
        for (j, want) in expected.iter().enumerate() {
            let got = eliminated_fraction(j);
            assert!((got - want).abs() < 0.005, "j={j}: {got} vs {want}");
        }
    }

    #[test]
    fn five_way_split_total_work_constant() {
        for j in 0..=5 {
            let (plan, _) = five_way_split(j);
            let q = QueryModel::new(&plan);
            assert!((q.total_work() - 57.0).abs() < 1e-12, "j={j}");
            assert_eq!(plan.len(), 7);
        }
    }

    #[test]
    fn five_way_pivot_position_changes() {
        let (plan0, pivot0) = five_way_split(0);
        assert!(plan0.below(pivot0).unwrap().len() == 1); // bottom only
        let (plan5, pivot5) = five_way_split(5);
        assert_eq!(plan5.below(pivot5).unwrap().len(), 6);
        assert!(plan5.above(pivot5).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "five stages")]
    fn six_moved_rejected() {
        five_way_split(6);
    }
}
