//! TPC-H Q4 — order priority checking (join-heavy).
//!
//! ```sql
//! SELECT o_orderpriority, count(*) AS order_count
//! FROM orders
//! WHERE o_orderdate >= date '1993-07-01'
//!   AND o_orderdate < date '1993-10-01'
//!   AND EXISTS (SELECT * FROM lineitem
//!               WHERE l_orderkey = o_orderkey
//!                 AND l_commitdate < l_receiptdate)
//! GROUP BY o_orderpriority
//! ```
//!
//! The EXISTS subquery is a semi hash join: build the set of order keys
//! with a late lineitem, probe with the date-filtered orders. The pivot
//! is the whole join sub-plan — per the paper, its per-sharer output
//! cost is insignificant next to the scans and the join itself, so
//! sharing Q4 always wins (Figure 2 right).

use super::{li, ord};
use crate::costs::CostProfile;
use cordoba_engine::QuerySpec;
use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::{JoinKind, PhysicalPlan};
use cordoba_storage::Date;

/// The shareable join sub-plan (EXISTS semi join of filtered orders
/// against late lineitems).
pub(crate) fn q4_join(costs: &CostProfile) -> PhysicalPlan {
    let late_lineitems = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::Scan {
            table: "lineitem".into(),
            cost: costs.scan,
        }),
        predicate: Predicate::cmp(
            ScalarExpr::Col(li::COMMITDATE),
            CmpOp::Lt,
            ScalarExpr::Col(li::RECEIPTDATE),
        ),
        cost: costs.filter,
    };
    let quarter_orders = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::Scan {
            table: "orders".into(),
            cost: costs.scan,
        }),
        predicate: Predicate::And(vec![
            Predicate::col_cmp(ord::ORDERDATE, CmpOp::Ge, Date::from_ymd(1993, 7, 1)),
            Predicate::col_cmp(ord::ORDERDATE, CmpOp::Lt, Date::from_ymd(1993, 10, 1)),
        ]),
        cost: costs.filter,
    };
    PhysicalPlan::HashJoin {
        build: Box::new(late_lineitems),
        probe: Box::new(quarter_orders),
        build_key: li::ORDERKEY,
        probe_key: ord::ORDERKEY,
        kind: JoinKind::Semi,
        build_cost: costs.join_build,
        probe_cost: costs.join_probe,
    }
}

/// Builds Q4, shareable at the join.
pub fn q4(costs: &CostProfile) -> QuerySpec {
    let join = q4_join(costs);
    let plan = PhysicalPlan::Aggregate {
        input: Box::new(join.clone()),
        group_by: vec![ord::ORDERPRIORITY],
        aggs: vec![("order_count".into(), Agg::Count)],
        cost: costs.aggregate,
    };
    QuerySpec::shared_at("q4", plan, join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::reference;
    use cordoba_storage::tpch::{generate, TpchConfig};
    use cordoba_storage::Value;

    #[test]
    fn q4_matches_naive_computation() {
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 21,
            ..TpchConfig::default()
        });
        let got = reference::execute(&catalog, &q4(&CostProfile::paper()).plan);
        let want = crate::naive::q4(&catalog);
        assert_eq!(got.len(), want.len());
        for (g, (priority, count)) in got.iter().zip(&want) {
            assert_eq!(g[0], Value::Str(priority.clone()));
            assert_eq!(g[1], Value::Int(*count));
        }
        // All five priorities appear at this scale.
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn q4_exists_semantics_counts_orders_once() {
        // An order with several late lineitems must count once: total
        // order_count <= orders in the date window.
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 21,
            ..TpchConfig::default()
        });
        let got = reference::execute(&catalog, &q4(&CostProfile::paper()).plan);
        let counted: i64 = got.iter().map(|r| r[1].as_int().unwrap()).sum();
        let lo = Date::from_ymd(1993, 7, 1);
        let hi = Date::from_ymd(1993, 10, 1);
        let in_window = catalog
            .expect("orders")
            .scan_values()
            .filter(|r| {
                let d = r[ord::ORDERDATE].as_date().unwrap();
                d >= lo && d < hi
            })
            .count() as i64;
        assert!(counted <= in_window);
        assert!(counted > 0);
    }
}
