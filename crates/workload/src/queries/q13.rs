//! TPC-H Q13 — customer distribution (join-heavy).
//!
//! ```sql
//! SELECT c_count, count(*) AS custdist
//! FROM (SELECT c_custkey, count(o_orderkey) AS c_count
//!       FROM customer LEFT OUTER JOIN orders
//!         ON c_custkey = o_custkey
//!        AND o_comment NOT LIKE '%special%requests%'
//!       GROUP BY c_custkey) AS c_orders
//! GROUP BY c_count
//! ```
//!
//! Implemented as: count qualifying orders per customer key (hash
//! aggregate), LEFT OUTER hash join onto `customer` (a customer with no
//! qualifying orders joins the type-default count 0), then aggregate the
//! distribution. The pivot is the join sub-plan including the per-key
//! counting.

use super::{cust, ord};
use crate::costs::CostProfile;
use cordoba_engine::QuerySpec;
use cordoba_exec::expr::{Agg, Predicate};
use cordoba_exec::{JoinKind, PhysicalPlan};

/// The shareable sub-plan: per-customer qualifying-order counts,
/// outer-joined onto the customer table.
pub(crate) fn q13_join(costs: &CostProfile) -> PhysicalPlan {
    let qualifying_orders = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::Scan {
            table: "orders".into(),
            cost: costs.scan,
        }),
        predicate: Predicate::Not(Box::new(Predicate::Like {
            col: ord::COMMENT,
            pattern: "%special%requests%".into(),
        })),
        cost: costs.filter,
    };
    let per_customer_counts = PhysicalPlan::Aggregate {
        input: Box::new(qualifying_orders),
        group_by: vec![ord::CUSTKEY],
        aggs: vec![("c_count".into(), Agg::Count)],
        cost: costs.aggregate,
    };
    PhysicalPlan::HashJoin {
        build: Box::new(per_customer_counts),
        probe: Box::new(PhysicalPlan::Scan {
            table: "customer".into(),
            cost: costs.scan,
        }),
        build_key: 0, // o_custkey in the counts schema
        probe_key: cust::CUSTKEY,
        kind: JoinKind::LeftOuter,
        build_cost: costs.join_build,
        probe_cost: costs.join_probe,
    }
}

/// Index of `c_count` in the join output (customer columns, then
/// build-side `[o_custkey, c_count]`).
pub(crate) const C_COUNT_IDX: usize = cust::WIDTH + 1;

/// Builds Q13, shareable at the join.
pub fn q13(costs: &CostProfile) -> QuerySpec {
    let join = q13_join(costs);
    let plan = PhysicalPlan::Aggregate {
        input: Box::new(join.clone()),
        group_by: vec![C_COUNT_IDX],
        aggs: vec![("custdist".into(), Agg::Count)],
        cost: costs.aggregate,
    };
    QuerySpec::shared_at("q13", plan, join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::reference;
    use cordoba_storage::tpch::{generate, TpchConfig};
    use cordoba_storage::Value;

    #[test]
    fn q13_matches_naive_computation() {
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 31,
            ..TpchConfig::default()
        });
        let got = reference::execute(&catalog, &q13(&CostProfile::paper()).plan);
        let want = crate::naive::q13(&catalog);
        let got_pairs: Vec<(i64, i64)> = got
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(got_pairs, want);
    }

    #[test]
    fn q13_distribution_covers_all_customers() {
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 31,
            ..TpchConfig::default()
        });
        let got = reference::execute(&catalog, &q13(&CostProfile::paper()).plan);
        let total: i64 = got.iter().map(|r| r[1].as_int().unwrap()).sum();
        assert_eq!(total, catalog.expect("customer").row_count() as i64);
    }

    #[test]
    fn q13_zero_bucket_when_special_rate_high() {
        // With most comments special, many customers end with 0
        // qualifying orders: the c_count = 0 bucket must exist (the
        // LEFT OUTER part of the query).
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 31,
            special_comment_rate: 0.95,
            ..TpchConfig::default()
        });
        let got = reference::execute(&catalog, &q13(&CostProfile::paper()).plan);
        let zero = got
            .iter()
            .find(|r| r[0] == Value::Int(0))
            .map(|r| r[1].as_int().unwrap())
            .unwrap_or(0);
        assert!(zero > 0, "expected a non-empty c_count=0 bucket");
    }
}
