//! TPC-H Q1 — pricing summary report (scan-heavy).
//!
//! ```sql
//! SELECT l_returnflag, l_linestatus,
//!        sum(l_quantity), sum(l_extendedprice),
//!        sum(l_extendedprice*(1-l_discount)),
//!        sum(l_extendedprice*(1-l_discount)*(1+l_tax)),
//!        avg(l_quantity), avg(l_extendedprice), avg(l_discount),
//!        count(*)
//! FROM lineitem
//! WHERE l_shipdate <= date '1998-12-01' - interval '90' day
//! GROUP BY l_returnflag, l_linestatus
//! ```

use super::li;
use super::q6::lineitem_scan;
use crate::costs::CostProfile;
use cordoba_engine::QuerySpec;
use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::PhysicalPlan;
use cordoba_storage::Date;

fn col(i: usize) -> ScalarExpr {
    ScalarExpr::Col(i)
}

fn disc_price() -> ScalarExpr {
    // l_extendedprice * (1 - l_discount)
    ScalarExpr::Mul(
        Box::new(col(li::EXTENDEDPRICE)),
        Box::new(ScalarExpr::Sub(
            Box::new(ScalarExpr::FloatLit(1.0)),
            Box::new(col(li::DISCOUNT)),
        )),
    )
}

fn charge() -> ScalarExpr {
    // disc_price * (1 + l_tax)
    ScalarExpr::Mul(
        Box::new(disc_price()),
        Box::new(ScalarExpr::Add(
            Box::new(ScalarExpr::FloatLit(1.0)),
            Box::new(col(li::TAX)),
        )),
    )
}

/// Builds Q1. Shares at the same `lineitem` scan as Q6 (so the engine
/// can merge Q1 and Q6 into one scan group).
pub fn q1(costs: &CostProfile) -> QuerySpec {
    let scan = lineitem_scan(costs);
    let cutoff = Date::from_ymd(1998, 12, 1).plus_days(-90);
    let plan = PhysicalPlan::Aggregate {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(scan.clone()),
            predicate: Predicate::col_cmp(li::SHIPDATE, CmpOp::Le, cutoff),
            cost: costs.filter,
        }),
        group_by: vec![li::RETURNFLAG, li::LINESTATUS],
        aggs: vec![
            ("sum_qty".into(), Agg::Sum(col(li::QUANTITY))),
            ("sum_base_price".into(), Agg::Sum(col(li::EXTENDEDPRICE))),
            ("sum_disc_price".into(), Agg::Sum(disc_price())),
            ("sum_charge".into(), Agg::Sum(charge())),
            ("avg_qty".into(), Agg::Avg(col(li::QUANTITY))),
            ("avg_price".into(), Agg::Avg(col(li::EXTENDEDPRICE))),
            ("avg_disc".into(), Agg::Avg(col(li::DISCOUNT))),
            ("count_order".into(), Agg::Count),
        ],
        cost: costs.heavy_aggregate,
    };
    QuerySpec::shared_at("q1", plan, scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::reference;
    use cordoba_storage::tpch::{generate, TpchConfig};
    use cordoba_storage::Value;

    #[test]
    fn q1_matches_naive_computation() {
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 5,
            ..TpchConfig::default()
        });
        let got = reference::execute(&catalog, &q1(&CostProfile::paper()).plan);
        let want = crate::naive::q1(&catalog);
        assert_eq!(got.len(), want.len(), "group count");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g[0], Value::Str(w.returnflag.clone()));
            assert_eq!(g[1], Value::Str(w.linestatus.clone()));
            let close = |got: &Value, want: f64| {
                let got = got.as_float().unwrap();
                assert!(
                    (got - want).abs() < 1e-6 * want.abs().max(1.0),
                    "got {got}, want {want}"
                );
            };
            close(&g[2], w.sum_qty);
            close(&g[3], w.sum_base_price);
            close(&g[4], w.sum_disc_price);
            close(&g[5], w.sum_charge);
            close(&g[6], w.avg_qty);
            close(&g[7], w.avg_price);
            close(&g[8], w.avg_disc);
            assert_eq!(g[9], Value::Int(w.count));
        }
    }

    #[test]
    fn q1_produces_all_flag_status_groups() {
        // TPC-H Q1 famously yields 4 groups (AF, NF, NO, RF); NO is
        // excluded here only if the 90-day cutoff filters all 'O' rows,
        // which it does not.
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 5,
            ..TpchConfig::default()
        });
        let got = reference::execute(&catalog, &q1(&CostProfile::paper()).plan);
        let groups: Vec<(String, String)> = got
            .iter()
            .map(|r| {
                (
                    r[0].as_str().unwrap().to_string(),
                    r[1].as_str().unwrap().to_string(),
                )
            })
            .collect();
        assert!(groups.contains(&("A".into(), "F".into())));
        assert!(groups.contains(&("N".into(), "O".into())));
        assert!(groups.contains(&("R".into(), "F".into())));
        assert_eq!(groups.len(), 4);
    }
}
