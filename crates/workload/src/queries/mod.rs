//! Physical plans for the paper's four TPC-H queries.
//!
//! Plans are hand-built (the paper fixes plans and predicates, and
//! allows sharing only at one selected node per query: the `lineitem`
//! scan for Q1/Q6, the join for Q4/Q13).

mod q1;
mod q13;
mod q4;
mod q6;

pub use q1::q1;
pub use q13::q13;
pub use q4::q4;
pub use q6::{q6, q6_with_params, Q6Params};

pub(crate) use q6::lineitem_scan;

use crate::costs::CostProfile;
use cordoba_engine::QuerySpec;

/// Builds all four queries under one cost profile.
pub fn all(costs: &CostProfile) -> Vec<QuerySpec> {
    vec![q1(costs), q6(costs), q4(costs), q13(costs)]
}

/// Column indices of the generated `lineitem` schema
/// (see `cordoba_storage::tpch::lineitem_schema`).
pub(crate) mod li {
    pub const ORDERKEY: usize = 0;
    pub const QUANTITY: usize = 1;
    pub const EXTENDEDPRICE: usize = 2;
    pub const DISCOUNT: usize = 3;
    pub const TAX: usize = 4;
    pub const RETURNFLAG: usize = 5;
    pub const LINESTATUS: usize = 6;
    pub const SHIPDATE: usize = 7;
    pub const COMMITDATE: usize = 8;
    pub const RECEIPTDATE: usize = 9;
}

/// Column indices of the generated `orders` schema.
pub(crate) mod ord {
    pub const ORDERKEY: usize = 0;
    pub const CUSTKEY: usize = 1;
    pub const ORDERDATE: usize = 2;
    pub const ORDERPRIORITY: usize = 3;
    pub const COMMENT: usize = 4;
}

/// Column indices of the generated `customer` schema.
pub(crate) mod cust {
    pub const CUSTKEY: usize = 0;
    /// Width of the customer schema (Q13's join output places the
    /// build-side columns after these).
    pub const WIDTH: usize = 4;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_storage::tpch::{generate, TpchConfig};

    #[test]
    fn all_queries_have_pivots_and_valid_schemas() {
        let catalog = generate(&TpchConfig {
            scale_factor: 0.001,
            ..TpchConfig::default()
        });
        for spec in all(&CostProfile::paper()) {
            assert!(spec.pivot.is_some(), "{} must be shareable", spec.name);
            // Schema derivation must succeed for plan and pivot.
            let _ = spec.plan.output_schema(&catalog);
            let _ = spec.pivot.as_ref().unwrap().output_schema(&catalog);
        }
    }

    #[test]
    fn scan_heavy_queries_share_the_same_pivot() {
        // Q1 and Q6 share at the identical lineitem scan: the engine can
        // merge them into one group.
        let costs = CostProfile::paper();
        assert_eq!(q1(&costs).pivot, q6(&costs).pivot);
    }

    #[test]
    fn parameterized_q6_variants_share_the_same_pivot() {
        // The paper's Figure 1 setup: different clients, different
        // predicate constants, one shared scan.
        let costs = CostProfile::paper();
        let base = q6(&costs);
        for client in 0..8 {
            let variant = q6_with_params(&costs, Q6Params::for_client(client));
            assert_eq!(variant.pivot, base.pivot, "client {client}");
            if client % 5 != 1 || client % 6 != 3 || client % 11 != 4 {
                assert_ne!(variant.plan, base.plan, "client {client} predicate differs");
            }
        }
    }

    #[test]
    fn join_heavy_pivots_differ_from_scans() {
        let costs = CostProfile::paper();
        assert_ne!(q4(&costs).pivot, q1(&costs).pivot);
        assert_ne!(q4(&costs).pivot, q13(&costs).pivot);
    }
}
