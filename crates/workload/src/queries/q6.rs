//! TPC-H Q6 — forecasting revenue change (scan-heavy).
//!
//! ```sql
//! SELECT sum(l_extendedprice * l_discount) AS revenue
//! FROM lineitem
//! WHERE l_shipdate >= date '1994-01-01'
//!   AND l_shipdate < date '1995-01-01'
//!   AND l_discount BETWEEN 0.05 AND 0.07
//!   AND l_quantity < 24
//! ```
//!
//! The paper's running example: dominated by the `lineitem` scan, with a
//! tiny private predicate+aggregate — the workload for which sharing is
//! only attractive on a uniprocessor (Figure 1, Section 4.4).

use super::li;
use crate::costs::CostProfile;
use cordoba_engine::QuerySpec;
use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::PhysicalPlan;
use cordoba_storage::Date;

/// The shareable pivot: the full `lineitem` scan.
pub(crate) fn lineitem_scan(costs: &CostProfile) -> PhysicalPlan {
    PhysicalPlan::Scan {
        table: "lineitem".into(),
        cost: costs.scan,
    }
}

/// Per-client Q6 predicate parameters. The paper's Figure 1 experiment
/// has every client use *different* predicate constants while sharing
/// the common scan — the predicates live above the pivot, so parameter
/// variation does not break group formation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Q6Params {
    /// Ship-date window start year (window is one calendar year).
    pub year: i32,
    /// Discount band center (±0.01, like the official query's `0.06`).
    pub discount: f64,
    /// Quantity upper bound (exclusive).
    pub max_quantity: f64,
}

impl Default for Q6Params {
    /// The official validation parameters (1994 / 0.06 / 24).
    fn default() -> Self {
        Self {
            year: 1994,
            discount: 0.06,
            max_quantity: 24.0,
        }
    }
}

impl Q6Params {
    /// A deterministic per-client variation, cycling years 1993–1997,
    /// discount bands 0.03–0.08 and quantity bounds 20–30.
    pub fn for_client(client: usize) -> Self {
        Self {
            year: 1993 + (client % 5) as i32,
            discount: 0.03 + (client % 6) as f64 / 100.0,
            max_quantity: 20.0 + (client % 11) as f64,
        }
    }
}

/// Builds Q6 with the official validation parameters.
pub fn q6(costs: &CostProfile) -> QuerySpec {
    q6_with_params(costs, Q6Params::default())
}

/// Builds Q6 with explicit predicate parameters. All parameterizations
/// share the identical `lineitem` scan pivot.
pub fn q6_with_params(costs: &CostProfile, params: Q6Params) -> QuerySpec {
    let scan = lineitem_scan(costs);
    let predicate = Predicate::And(vec![
        Predicate::col_cmp(li::SHIPDATE, CmpOp::Ge, Date::from_ymd(params.year, 1, 1)),
        Predicate::col_cmp(
            li::SHIPDATE,
            CmpOp::Lt,
            Date::from_ymd(params.year + 1, 1, 1),
        ),
        // Epsilon guards keep the ±0.01 band closed under f64 rounding
        // (generated discounts are multiples of 0.01, far above 1e-9).
        Predicate::col_cmp(li::DISCOUNT, CmpOp::Ge, params.discount - 0.01 - 1e-9),
        Predicate::col_cmp(li::DISCOUNT, CmpOp::Le, params.discount + 0.01 + 1e-9),
        Predicate::col_cmp(li::QUANTITY, CmpOp::Lt, params.max_quantity),
    ]);
    let revenue = ScalarExpr::Mul(
        Box::new(ScalarExpr::Col(li::EXTENDEDPRICE)),
        Box::new(ScalarExpr::Col(li::DISCOUNT)),
    );
    let plan = PhysicalPlan::Aggregate {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(scan.clone()),
            predicate,
            cost: costs.filter,
        }),
        group_by: vec![],
        aggs: vec![("revenue".into(), Agg::Sum(revenue))],
        cost: costs.aggregate,
    };
    QuerySpec::shared_at("q6", plan, scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::reference;
    use cordoba_storage::tpch::{generate, TpchConfig};

    #[test]
    fn q6_matches_naive_computation() {
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 11,
            ..TpchConfig::default()
        });
        let spec = q6(&CostProfile::paper());
        let got = reference::execute(&catalog, &spec.plan);
        let want = crate::naive::q6(&catalog);
        match (&got[..], want) {
            ([row], naive) => {
                let revenue = row[0].as_float().unwrap();
                assert!((revenue - naive).abs() < 1e-6 * naive.abs().max(1.0));
                assert!(revenue > 0.0, "predicates must select something");
            }
            other => panic!("expected one row, got {other:?}"),
        }
    }

    #[test]
    fn q6_selectivity_is_low() {
        // Scan-heavy: the aggregate sees ~2% of lineitem.
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 11,
            ..TpchConfig::default()
        });
        let spec = q6(&CostProfile::paper());
        let PhysicalPlan::Aggregate { input, .. } = &spec.plan else {
            panic!()
        };
        let selected = reference::execute(&catalog, input).len();
        let total = catalog.expect("lineitem").row_count();
        let sel = selected as f64 / total as f64;
        assert!(sel < 0.05, "selectivity {sel}");
    }
}
