//! # cordoba-workload — the paper's query workloads
//!
//! * [`queries`] — physical plans for TPC-H Q1 and Q6 (scan-heavy,
//!   shareable at the `lineitem` scan) and Q4 and Q13 (join-heavy,
//!   shareable at the join sub-plan), with the fixed predicates the
//!   paper uses (Section 3.1: "we fix the query predicates to constant
//!   values").
//! * [`costs`] — the calibrated per-operator virtual costs. The scan is
//!   calibrated to the paper's measured Q6 parameters
//!   (w = 9.66, s = 10.34 per scanned tuple, Section 4.4).
//! * [`synthetic`] — the 3-stage model query of Section 6
//!   (p=10 / w=6,s=1 / p=10) and the 5-way-split variant of Section 6.3,
//!   used by the sensitivity-analysis figures.
//! * [`family`] — seeded parameterized query families: distinct but
//!   strictly nested Q6/Q1-style selection windows, the workload for the
//!   subsumption-sharing experiments (no two queries byte-identical).
//! * [`arrivals`] — seeded arrival-schedule generators for the service
//!   loop: Poisson mixes, bursty on/off sources, saturation ramps, and
//!   chaos (fault-injection) campaigns.
//! * [`mix`] — client mixes for the policy comparison of Section 8.2.
//! * [`naive`] — straight-line reimplementations of each query over raw
//!   rows, independent of the operator layer: the ground truth the
//!   plans are tested against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod costs;
pub mod family;
pub mod mix;
pub mod naive;
pub mod queries;
pub mod synthetic;

pub use costs::CostProfile;
pub use family::{family_specs, FamilyConfig};
pub use queries::{q1, q13, q4, q6, q6_with_params, Q6Params};
