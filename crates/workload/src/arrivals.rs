//! Seeded arrival-schedule generators for the open-system service loop.
//!
//! [`cordoba_engine::service`] consumes plain
//! [`ArrivalSchedule`]s — `(arrival time, query)` pairs sorted by time —
//! so arrival processes are just generator functions. This module
//! provides the processes the tail-latency harness drives beyond the
//! fixed-rate Poisson of [`cordoba_engine::poisson_arrivals`]:
//!
//! * [`poisson_mix`] — Poisson arrivals drawing uniformly from a pool
//!   of query specs (heterogeneous clients, one arrival process).
//! * [`bursty`] — an on/off source: tight bursts of back-to-back
//!   arrivals separated by long idle gaps, the worst case for a
//!   formation window (whole bursts co-reside; nothing else does).
//! * [`ramp`] — a saturation ramp: inter-arrival gaps shrink linearly
//!   from `gap_start` to `gap_end`, walking the system from underload
//!   into overload within one run.
//! * [`chaos`] — decorates any schedule with injected faults: each
//!   query independently fails with probability `fault_rate` via
//!   [`QuerySpec::with_chaos`], exercising the failure-accounting path
//!   under load.
//!
//! All generators are deterministic per seed (they draw from
//! [`SmallRng`]), so service benchmarks built on them are reproducible
//! across hosts.

use cordoba_engine::{ArrivalSchedule, QuerySpec};
use cordoba_exec::ExecError;
use cordoba_sim::VTime;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Draws the next exponential gap with the given mean (rounded to
/// virtual-time units).
fn exp_gap(rng: &mut SmallRng, mean: VTime) -> VTime {
    let u: f64 = rng.gen_range(1e-9..1.0);
    (-u.ln() * mean as f64).round() as VTime
}

/// Poisson arrivals over a heterogeneous query pool: `count` arrivals
/// with exponential inter-arrival gaps of mean `mean_gap`, each drawing
/// its spec uniformly from `pool`. Panics if `pool` is empty.
pub fn poisson_mix(
    pool: &[QuerySpec],
    count: usize,
    mean_gap: VTime,
    seed: u64,
) -> ArrivalSchedule {
    assert!(!pool.is_empty(), "poisson_mix needs a non-empty query pool");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t: VTime = 0;
    (0..count)
        .map(|_| {
            t += exp_gap(&mut rng, mean_gap);
            let spec = pool[rng.gen_range(0..pool.len())].clone();
            (t, spec)
        })
        .collect()
}

/// An on/off (bursty) source: arrivals come in bursts of
/// `burst_size` queries spaced `within_gap` apart, with bursts
/// separated by exponential idle gaps of mean `idle_gap`. Specs cycle
/// round-robin through `pool`, so a burst mixes query shapes the way
/// coincident clients would. Generates `bursts × burst_size` arrivals.
/// Panics if `pool` is empty or `burst_size` is 0.
pub fn bursty(
    pool: &[QuerySpec],
    bursts: usize,
    burst_size: usize,
    within_gap: VTime,
    idle_gap: VTime,
    seed: u64,
) -> ArrivalSchedule {
    assert!(!pool.is_empty(), "bursty needs a non-empty query pool");
    assert!(burst_size > 0, "bursty needs a positive burst size");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut schedule = Vec::with_capacity(bursts * burst_size);
    let mut t: VTime = 0;
    let mut next_spec = 0usize;
    for _ in 0..bursts {
        t += exp_gap(&mut rng, idle_gap);
        let mut at = t;
        for _ in 0..burst_size {
            schedule.push((at, pool[next_spec % pool.len()].clone()));
            next_spec += 1;
            at += within_gap;
        }
        // The next idle gap opens after the burst finished arriving.
        t = at;
    }
    schedule
}

/// A load ramp: `count` arrivals whose exponential mean gap shrinks
/// linearly from `gap_start` (first arrival) to `gap_end` (last) —
/// offered load grows until the system saturates. Specs cycle
/// round-robin through `pool`. Panics if `pool` is empty.
pub fn ramp(
    pool: &[QuerySpec],
    count: usize,
    gap_start: VTime,
    gap_end: VTime,
    seed: u64,
) -> ArrivalSchedule {
    assert!(!pool.is_empty(), "ramp needs a non-empty query pool");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t: VTime = 0;
    (0..count)
        .map(|i| {
            let frac = if count > 1 {
                i as f64 / (count - 1) as f64
            } else {
                0.0
            };
            let mean = gap_start as f64 + (gap_end as f64 - gap_start as f64) * frac;
            t += exp_gap(&mut rng, mean.round().max(1.0) as VTime);
            (t, pool[i % pool.len()].clone())
        })
        .collect()
}

/// Chaos campaign: each query in `schedule` independently gets an
/// injected fault with probability `fault_rate` (its sink observes
/// [`ExecError::Injected`] and the query fails instead of completing).
/// Arrival times are untouched; only dispositions change.
pub fn chaos(schedule: ArrivalSchedule, fault_rate: f64, seed: u64) -> ArrivalSchedule {
    let mut rng = SmallRng::seed_from_u64(seed);
    schedule
        .into_iter()
        .enumerate()
        .map(|(i, (t, spec))| {
            if rng.gen_bool(fault_rate.clamp(0.0, 1.0)) {
                let err = ExecError::Injected {
                    detail: format!("chaos campaign: arrival {i}"),
                };
                (t, spec.with_chaos(err))
            } else {
                (t, spec)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CostProfile;
    use crate::queries::{q1, q6};

    fn pool() -> Vec<QuerySpec> {
        let costs = CostProfile::paper();
        vec![q6(&costs), q1(&costs)]
    }

    fn times(s: &ArrivalSchedule) -> Vec<VTime> {
        s.iter().map(|(t, _)| *t).collect()
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let p = pool();
        assert_eq!(poisson_mix(&p, 30, 1_000, 7), poisson_mix(&p, 30, 1_000, 7));
        assert_ne!(
            times(&poisson_mix(&p, 30, 1_000, 7)),
            times(&poisson_mix(&p, 30, 1_000, 8))
        );
        assert_eq!(
            bursty(&p, 4, 5, 10, 50_000, 7),
            bursty(&p, 4, 5, 10, 50_000, 7)
        );
        assert_eq!(ramp(&p, 30, 10_000, 100, 7), ramp(&p, 30, 10_000, 100, 7));
        let base = poisson_mix(&p, 30, 1_000, 7);
        assert_eq!(chaos(base.clone(), 0.3, 9), chaos(base, 0.3, 9));
    }

    #[test]
    fn schedules_are_sorted_and_sized() {
        let p = pool();
        for s in [
            poisson_mix(&p, 40, 2_000, 1),
            bursty(&p, 5, 8, 10, 100_000, 2),
            ramp(&p, 40, 50_000, 500, 3),
        ] {
            assert!(s.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by time");
        }
        assert_eq!(poisson_mix(&p, 40, 2_000, 1).len(), 40);
        assert_eq!(bursty(&p, 5, 8, 10, 100_000, 2).len(), 40);
        assert_eq!(ramp(&p, 40, 50_000, 500, 3).len(), 40);
    }

    #[test]
    fn bursty_clusters_and_spreads() {
        let p = pool();
        let s = bursty(&p, 3, 4, 10, 1_000_000, 5);
        // Within a burst: consecutive gaps are exactly `within_gap`.
        for b in 0..3 {
            let burst = &s[b * 4..(b + 1) * 4];
            for w in burst.windows(2) {
                assert_eq!(w[1].0 - w[0].0, 10);
            }
        }
        // Across bursts the idle gap dominates the within gap.
        assert!(s[4].0 - s[3].0 > 10);
    }

    #[test]
    fn ramp_gaps_shrink_on_average() {
        let p = pool();
        let s = ramp(&p, 200, 100_000, 100, 11);
        let t = times(&s);
        let first_half: VTime = t[100] - t[0];
        let second_half: VTime = t[199] - t[100];
        assert!(
            first_half > second_half,
            "early gaps must dominate: {first_half} vs {second_half}"
        );
    }

    #[test]
    fn chaos_marks_the_expected_fraction() {
        let p = pool();
        let base = poisson_mix(&p, 200, 1_000, 13);
        let marked = chaos(base.clone(), 0.25, 17);
        let faulty = marked.iter().filter(|(_, s)| s.chaos.is_some()).count();
        assert!(
            (20..=80).contains(&faulty),
            "~25% of 200 should be marked, got {faulty}"
        );
        // Times unchanged; rate 0 and 1 are exact.
        assert_eq!(times(&base), times(&marked));
        assert!(chaos(base.clone(), 0.0, 1)
            .iter()
            .all(|(_, s)| s.chaos.is_none()));
        assert!(chaos(base, 1.0, 1).iter().all(|(_, s)| s.chaos.is_some()));
    }
}
