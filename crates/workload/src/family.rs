//! Seeded parameterized query families for the subsumption experiments.
//!
//! The paper's Figure 1 workload already varies predicate *constants*
//! per client, but every client shares the identical full-table scan
//! pivot — sharing there is purely structural. This module generates the
//! harder workload the subsumption machinery exists for: families of
//! Q6/Q1-style queries whose pivots are **selection fragments with
//! distinct but strictly nested predicate windows**. No two generated
//! queries are byte-identical, so the historic equality-based sharing
//! finds nothing; the fingerprint + subsumption path shares the widest
//! member's fragment and feeds the narrower ones through residual
//! filters.
//!
//! Each family draws a seeded root window over `l_shipdate`,
//! `l_discount` and `l_quantity`, then tightens it member by member, so
//! within a family every earlier window contains every later one
//! (pairwise comparable under [`cordoba_exec::subsume`]). Different
//! families draw independent roots and generally only partially overlap,
//! which exercises the negative side of the lattice too.

use crate::costs::CostProfile;
use crate::queries::{li, lineitem_scan};
use cordoba_engine::QuerySpec;
use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::PhysicalPlan;
use cordoba_storage::Date;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for [`family_specs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyConfig {
    /// RNG seed; equal seeds yield identical workloads.
    pub seed: u64,
    /// Number of independent families (distinct root windows).
    pub families: usize,
    /// Queries per family (nested chain length).
    pub per_family: usize,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            families: 2,
            per_family: 4,
        }
    }
}

/// One member's predicate window, kept in integer/cent units so
/// tightening is exact and windows can be compared for uniqueness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Window {
    /// Ship-date bounds as day offsets from 1992-01-01: `[lo, hi)`.
    ship_lo: i32,
    ship_hi: i32,
    /// Discount bounds in cents: `[lo, hi]` (inclusive, like Q6's
    /// BETWEEN).
    disc_lo: i32,
    disc_hi: i32,
    /// Quantity bounds: `[lo, hi)`.
    qty_lo: i64,
    qty_hi: i64,
}

impl Window {
    fn predicate(&self) -> Predicate {
        let epoch = Date::from_ymd(1992, 1, 1);
        Predicate::And(vec![
            Predicate::col_cmp(li::SHIPDATE, CmpOp::Ge, epoch.plus_days(self.ship_lo)),
            Predicate::col_cmp(li::SHIPDATE, CmpOp::Lt, epoch.plus_days(self.ship_hi)),
            Predicate::col_cmp(li::DISCOUNT, CmpOp::Ge, self.disc_lo as f64 / 100.0),
            Predicate::col_cmp(li::DISCOUNT, CmpOp::Le, self.disc_hi as f64 / 100.0),
            Predicate::col_cmp(li::QUANTITY, CmpOp::Ge, self.qty_lo as f64),
            Predicate::col_cmp(li::QUANTITY, CmpOp::Lt, self.qty_hi as f64),
        ])
    }

    /// Tightens each dimension by a small seeded step, keeping the new
    /// window strictly inside `self` (the ship window always shrinks, so
    /// successive members are never equal).
    fn tighten(&self, rng: &mut SmallRng) -> Self {
        let mut w = *self;
        w.ship_lo += rng.gen_range(10i32..=30);
        w.ship_hi -= rng.gen_range(10i32..=30);
        debug_assert!(w.ship_lo < w.ship_hi, "ship window emptied: {w:?}");
        if w.disc_hi - w.disc_lo > 2 {
            w.disc_hi -= 1;
        }
        if w.qty_hi - w.qty_lo > 6 {
            w.qty_lo += rng.gen_range(0i64..=1);
            w.qty_hi -= rng.gen_range(1i64..=2);
        }
        w
    }
}

/// Draws a family root: a wide window with enough slack for the chain
/// to tighten `per_family` times without emptying.
fn root_window(rng: &mut SmallRng, per_family: usize) -> Window {
    // Each tighten step removes at most 30 days per side; leave a
    // comfortable floor beyond that.
    let slack = 60 * per_family as i32 + 90;
    let ship_lo = rng.gen_range(0i32..900);
    let disc_lo = rng.gen_range(0i32..=3);
    let qty_lo = rng.gen_range(1i64..=6);
    Window {
        ship_lo,
        ship_hi: ship_lo + slack + rng.gen_range(0i32..300),
        disc_lo,
        disc_hi: disc_lo + rng.gen_range(4i32..=6),
        qty_lo,
        qty_hi: qty_lo + rng.gen_range(30i64..=42),
    }
}

/// Builds the member query: the pivot is the *whole selection fragment*
/// (scan + window filter), so members of one family have distinct but
/// nested pivots. Even members aggregate Q6-style (sum of revenue), odd
/// members Q1-style (group by returnflag/linestatus).
fn member_spec(costs: &CostProfile, window: &Window, shape: usize) -> QuerySpec {
    let pivot = PhysicalPlan::Filter {
        input: Box::new(lineitem_scan(costs)),
        predicate: window.predicate(),
        cost: costs.filter,
    };
    let (name, plan) = if shape.is_multiple_of(2) {
        let revenue = ScalarExpr::Mul(
            Box::new(ScalarExpr::Col(li::EXTENDEDPRICE)),
            Box::new(ScalarExpr::Col(li::DISCOUNT)),
        );
        (
            "q6f",
            PhysicalPlan::Aggregate {
                input: Box::new(pivot.clone()),
                group_by: vec![],
                aggs: vec![("revenue".into(), Agg::Sum(revenue))],
                cost: costs.aggregate,
            },
        )
    } else {
        (
            "q1f",
            PhysicalPlan::Aggregate {
                input: Box::new(pivot.clone()),
                group_by: vec![li::RETURNFLAG, li::LINESTATUS],
                aggs: vec![
                    ("sum_qty".into(), Agg::Sum(ScalarExpr::Col(li::QUANTITY))),
                    ("count_order".into(), Agg::Count),
                ],
                cost: costs.heavy_aggregate,
            },
        )
    };
    QuerySpec::shared_at(name, plan, pivot)
}

/// Generates the workload: `families × per_family` query specs,
/// interleaved round-robin across families (adjacent submissions come
/// from different families, like concurrent clients would). Every spec
/// is distinct; within a family, member `j`'s pivot window strictly
/// contains member `j+1`'s.
pub fn family_specs(costs: &CostProfile, cfg: &FamilyConfig) -> Vec<QuerySpec> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut used: HashSet<Window> = HashSet::new();
    let mut chains: Vec<Vec<QuerySpec>> = Vec::with_capacity(cfg.families);
    for f in 0..cfg.families {
        let mut window = loop {
            let w = root_window(&mut rng, cfg.per_family);
            if used.insert(w) {
                break w;
            }
        };
        let mut chain = Vec::with_capacity(cfg.per_family);
        for j in 0..cfg.per_family {
            chain.push(member_spec(costs, &window, f + j));
            if j + 1 < cfg.per_family {
                window = window.tighten(&mut rng);
                // Cross-family collisions are all but impossible, but
                // uniqueness must hold by construction: shaving one
                // more day off keeps the window nested and strictly
                // shrinking, so this terminates.
                while !used.insert(window) {
                    window.ship_lo += 1;
                }
            }
        }
        chains.push(chain);
    }
    let mut specs = Vec::with_capacity(cfg.families * cfg.per_family);
    for j in 0..cfg.per_family {
        for chain in &chains {
            specs.push(chain[j].clone());
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::reference;
    use cordoba_exec::subsume::{coverage_estimate, fingerprint, subsume_residual};
    use cordoba_storage::tpch::{generate, TpchConfig};

    fn specs(cfg: &FamilyConfig) -> Vec<QuerySpec> {
        family_specs(&CostProfile::paper(), cfg)
    }

    #[test]
    fn generator_is_deterministic_and_distinct() {
        let cfg = FamilyConfig::default();
        let a = specs(&cfg);
        let b = specs(&cfg);
        assert_eq!(a, b, "same seed, same workload");
        assert_eq!(a.len(), cfg.families * cfg.per_family);
        for (i, x) in a.iter().enumerate() {
            for y in &a[i + 1..] {
                assert_ne!(x, y, "no two generated queries may be identical");
            }
        }
        let c = specs(&FamilyConfig {
            seed: 43,
            ..FamilyConfig::default()
        });
        assert_ne!(a, c, "different seed, different windows");
    }

    #[test]
    fn family_chains_are_strictly_nested() {
        let cfg = FamilyConfig {
            seed: 7,
            families: 3,
            per_family: 4,
        };
        let all = specs(&cfg);
        // Un-interleave: spec index = j * families + f.
        for f in 0..cfg.families {
            for j in 0..cfg.per_family - 1 {
                let wide = all[j * cfg.families + f].pivot.as_ref().unwrap();
                let narrow = all[(j + 1) * cfg.families + f].pivot.as_ref().unwrap();
                let residual = subsume_residual(wide, narrow)
                    .unwrap_or_else(|| panic!("family {f}: member {j} must subsume {}", j + 1));
                assert_ne!(
                    residual,
                    Predicate::True,
                    "strictly nested windows leave a residual"
                );
                assert_eq!(fingerprint(wide), fingerprint(narrow));
                let c = coverage_estimate(wide, narrow);
                assert!(
                    c > 0.0 && c < 1.0,
                    "strict nesting ⇒ partial coverage, got {c}"
                );
            }
        }
    }

    #[test]
    fn both_query_shapes_appear_and_select_rows() {
        let catalog = generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 11,
            ..TpchConfig::default()
        });
        let all = specs(&FamilyConfig::default());
        assert!(all.iter().any(|s| s.name == "q6f"));
        assert!(all.iter().any(|s| s.name == "q1f"));
        // The root windows are wide enough that at least the widest
        // member of each family selects something at SF 0.002.
        let mut nonempty = 0;
        for spec in &all {
            let rows = reference::execute(&catalog, spec.pivot.as_ref().unwrap());
            if !rows.is_empty() {
                nonempty += 1;
            }
            // Plans themselves must evaluate (schema-valid).
            let _ = reference::execute(&catalog, &spec.plan);
        }
        assert!(nonempty > 0, "workload must select rows somewhere");
    }
}
