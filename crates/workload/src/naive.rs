//! Straight-line ground-truth implementations of the four queries,
//! computed directly over raw table rows with none of the operator
//! machinery. The plan-based executors (reference and simulator) are
//! tested against these.

use cordoba_storage::tpch::text::matches_special_requests;
use cordoba_storage::{Catalog, Date};
use std::collections::BTreeMap;

/// One Q1 output group.
#[derive(Debug, Clone, PartialEq)]
pub struct Q1Group {
    /// `l_returnflag`.
    pub returnflag: String,
    /// `l_linestatus`.
    pub linestatus: String,
    /// `sum(l_quantity)`.
    pub sum_qty: f64,
    /// `sum(l_extendedprice)`.
    pub sum_base_price: f64,
    /// `sum(l_extendedprice * (1 - l_discount))`.
    pub sum_disc_price: f64,
    /// `sum(l_extendedprice * (1 - l_discount) * (1 + l_tax))`.
    pub sum_charge: f64,
    /// `avg(l_quantity)`.
    pub avg_qty: f64,
    /// `avg(l_extendedprice)`.
    pub avg_price: f64,
    /// `avg(l_discount)`.
    pub avg_disc: f64,
    /// `count(*)`.
    pub count: i64,
}

/// Q1 ground truth, sorted by (returnflag, linestatus).
pub fn q1(catalog: &Catalog) -> Vec<Q1Group> {
    /// (sum_qty, sum_price, sum_disc_price, sum_charge, sum_disc, count)
    type Acc = (f64, f64, f64, f64, f64, i64);
    let cutoff = Date::from_ymd(1998, 12, 1).plus_days(-90);
    let li = catalog.expect("lineitem");
    let mut groups: BTreeMap<(String, String), Acc> = BTreeMap::new();
    for row in li.scan_values() {
        let shipdate = row[7].as_date().unwrap();
        if shipdate > cutoff {
            continue;
        }
        let qty = row[1].as_float().unwrap();
        let price = row[2].as_float().unwrap();
        let disc = row[3].as_float().unwrap();
        let tax = row[4].as_float().unwrap();
        let key = (
            row[5].as_str().unwrap().to_string(),
            row[6].as_str().unwrap().to_string(),
        );
        let acc = groups.entry(key).or_insert((0.0, 0.0, 0.0, 0.0, 0.0, 0));
        acc.0 += qty;
        acc.1 += price;
        acc.2 += price * (1.0 - disc);
        acc.3 += price * (1.0 - disc) * (1.0 + tax);
        acc.4 += disc;
        acc.5 += 1;
    }
    groups
        .into_iter()
        .map(|((rf, ls), (sq, sp, sdp, sc, sd, n))| Q1Group {
            returnflag: rf,
            linestatus: ls,
            sum_qty: sq,
            sum_base_price: sp,
            sum_disc_price: sdp,
            sum_charge: sc,
            avg_qty: sq / n as f64,
            avg_price: sp / n as f64,
            avg_disc: sd / n as f64,
            count: n,
        })
        .collect()
}

/// Q6 ground truth: the revenue sum.
pub fn q6(catalog: &Catalog) -> f64 {
    let lo = Date::from_ymd(1994, 1, 1);
    let hi = Date::from_ymd(1995, 1, 1);
    let li = catalog.expect("lineitem");
    let mut revenue = 0.0;
    for row in li.scan_values() {
        let shipdate = row[7].as_date().unwrap();
        let disc = row[3].as_float().unwrap();
        let qty = row[1].as_float().unwrap();
        if shipdate >= lo && shipdate < hi && (0.05..=0.07).contains(&disc) && qty < 24.0 {
            revenue += row[2].as_float().unwrap() * disc;
        }
    }
    revenue
}

/// Q4 ground truth: `(o_orderpriority, order_count)` sorted by priority.
pub fn q4(catalog: &Catalog) -> Vec<(String, i64)> {
    let lo = Date::from_ymd(1993, 7, 1);
    let hi = Date::from_ymd(1993, 10, 1);
    let late: std::collections::HashSet<i64> = catalog
        .expect("lineitem")
        .scan_values()
        .filter(|row| row[8].as_date().unwrap() < row[9].as_date().unwrap())
        .map(|row| row[0].as_int().unwrap())
        .collect();
    let mut counts: BTreeMap<String, i64> = BTreeMap::new();
    for row in catalog.expect("orders").scan_values() {
        let d = row[2].as_date().unwrap();
        if d < lo || d >= hi {
            continue;
        }
        if late.contains(&row[0].as_int().unwrap()) {
            *counts
                .entry(row[3].as_str().unwrap().to_string())
                .or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Q13 ground truth: `(c_count, custdist)` sorted by c_count.
pub fn q13(catalog: &Catalog) -> Vec<(i64, i64)> {
    let mut per_customer: BTreeMap<i64, i64> = catalog
        .expect("customer")
        .scan_values()
        .map(|row| (row[0].as_int().unwrap(), 0))
        .collect();
    for row in catalog.expect("orders").scan_values() {
        if matches_special_requests(row[4].as_str().unwrap()) {
            continue;
        }
        if let Some(n) = per_customer.get_mut(&row[1].as_int().unwrap()) {
            *n += 1;
        }
    }
    let mut dist: BTreeMap<i64, i64> = BTreeMap::new();
    for (_, n) in per_customer {
        *dist.entry(n).or_insert(0) += 1;
    }
    dist.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_storage::tpch::{generate, TpchConfig};

    fn catalog() -> Catalog {
        generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 77,
            ..TpchConfig::default()
        })
    }

    #[test]
    fn q1_groups_are_consistent() {
        let groups = q1(&catalog());
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert!(g.count > 0);
            assert!((g.avg_qty - g.sum_qty / g.count as f64).abs() < 1e-9);
            // disc_price <= base_price (discounts are non-negative).
            assert!(g.sum_disc_price <= g.sum_base_price + 1e-9);
            // charge >= disc_price (taxes are non-negative).
            assert!(g.sum_charge >= g.sum_disc_price - 1e-9);
        }
    }

    #[test]
    fn q6_revenue_positive_and_bounded() {
        let cat = catalog();
        let rev = q6(&cat);
        assert!(rev > 0.0);
        // Upper bound: total extendedprice * max discount.
        let total: f64 = cat
            .expect("lineitem")
            .scan_values()
            .map(|r| r[2].as_float().unwrap())
            .sum();
        assert!(rev < total * 0.07);
    }

    #[test]
    fn q4_counts_bounded_by_quarter_orders() {
        let cat = catalog();
        let counts = q4(&cat);
        assert!(!counts.is_empty());
        let total: i64 = counts.iter().map(|(_, c)| c).sum();
        assert!(total > 0);
        assert!(total <= cat.expect("orders").row_count() as i64);
    }

    #[test]
    fn q13_distribution_sums_to_customers() {
        let cat = catalog();
        let dist = q13(&cat);
        let total: i64 = dist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, cat.expect("customer").row_count() as i64);
        // Mean orders per customer ~ 10 (1.5M orders / 150k customers):
        // the distribution must have mass beyond count 5.
        assert!(dist.iter().any(|(k, _)| *k > 5));
    }
}
