//! Client mixes for the policy comparison (paper Section 8.2 /
//! Figure 6): a configurable Q1/Q4 blend.

use crate::costs::CostProfile;
use crate::queries::{q1, q4};
use cordoba_engine::QuerySpec;

/// Builds `clients` client specs where `q4_fraction` of the clients
/// (rounded) submit Q4 and the rest submit Q1, interleaved so the mix is
/// uniform over client indices.
///
/// # Panics
///
/// Panics unless `0.0 <= q4_fraction <= 1.0`.
pub fn q1_q4_mix(costs: &CostProfile, clients: usize, q4_fraction: f64) -> Vec<QuerySpec> {
    assert!(
        (0.0..=1.0).contains(&q4_fraction),
        "fraction must be in [0, 1]"
    );
    let q1 = q1(costs);
    let q4 = q4(costs);
    let n_q4 = (clients as f64 * q4_fraction).round() as usize;
    // Evenly interleave using an error accumulator (Bresenham) so
    // arrival order doesn't cluster one query type.
    let mut out = Vec::with_capacity(clients);
    let mut acc = 0usize;
    for i in 0..clients {
        let want_q4_by_now = ((i + 1) * n_q4) / clients.max(1);
        if want_q4_by_now > acc {
            out.push(q4.clone());
            acc += 1;
        } else {
            out.push(q1.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_q4(specs: &[QuerySpec]) -> usize {
        specs.iter().filter(|s| s.name == "q4").count()
    }

    #[test]
    fn fractions_round_to_client_counts() {
        let costs = CostProfile::paper();
        assert_eq!(count_q4(&q1_q4_mix(&costs, 20, 0.0)), 0);
        assert_eq!(count_q4(&q1_q4_mix(&costs, 20, 0.25)), 5);
        assert_eq!(count_q4(&q1_q4_mix(&costs, 20, 0.5)), 10);
        assert_eq!(count_q4(&q1_q4_mix(&costs, 20, 1.0)), 20);
        assert_eq!(q1_q4_mix(&costs, 20, 0.75).len(), 20);
    }

    #[test]
    fn mix_is_interleaved_not_clustered() {
        let costs = CostProfile::paper();
        let mix = q1_q4_mix(&costs, 8, 0.5);
        let names: Vec<&str> = mix.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["q1", "q4", "q1", "q4", "q1", "q4", "q1", "q4"]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn out_of_range_fraction_rejected() {
        q1_q4_mix(&CostProfile::paper(), 4, 1.5);
    }
}
