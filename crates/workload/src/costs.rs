//! Calibrated per-operator virtual costs.
//!
//! Virtual cost units decouple simulated time from host speed. The
//! calibration anchors the scan to the paper's profiled TPC-H Q6
//! parameters (Section 4.4): the scan performs `w = 9.66` units per
//! scanned tuple and pays `s = 10.34` units per tuple *per consumer* it
//! delivers pages to — the dominant `s` that makes scan-sharing a
//! serialization bottleneck. Join output cost is small relative to the
//! scan/join work (Section 3.3: "the per-sharer work at the pivot
//! (join) is insignificant"), which is why join-heavy sharing always
//! wins in the paper.

use cordoba_exec::OpCost;
use serde::{Deserialize, Serialize};

/// The cost parameters used to build query plans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Table scan (the Q1/Q6 pivot).
    pub scan: OpCost,
    /// Streaming filter.
    pub filter: OpCost,
    /// Hash aggregation (light: Q6's single SUM).
    pub aggregate: OpCost,
    /// Heavy hash aggregation (Q1's eight aggregates over ~98% of the
    /// table — the paper's Q1 exhibits markedly more above-pivot work
    /// than Q6, visible in its lower 1-CPU sharing speedup).
    pub heavy_aggregate: OpCost,
    /// Hash-join build side.
    pub join_build: OpCost,
    /// Hash-join probe side; its `out_per_tuple` is the join pivot's `s`.
    pub join_probe: OpCost,
    /// Sort.
    pub sort: OpCost,
    /// Client-side sink.
    pub sink: OpCost,
}

impl CostProfile {
    /// Calibration matching the paper's profiled parameters.
    pub fn paper() -> Self {
        Self {
            // Section 4.4: w = 9.66, s = 10.34 per scanned tuple.
            scan: OpCost::new(9.66, 10.34),
            // The private predicate + aggregate work per scanned tuple
            // was 0.97 in the paper; we split it between the filter
            // (sees every tuple) and the aggregate (sees survivors).
            filter: OpCost::new(0.8, 0.1),
            aggregate: OpCost::new(0.9, 0.1),
            heavy_aggregate: OpCost::new(3.0, 0.1),
            // Join work dominates; its per-consumer output cost is
            // insignificant, as measured for Q4/Q13. The weights give
            // join-heavy queries the pipeline utilization (~1.6-1.8
            // processors per query) implied by the paper's Figure 2
            // right panel (sharing still wins at 32 CPUs under ~20+
            // clients, which requires unshared saturation there).
            join_build: OpCost::per_tuple(10.0),
            join_probe: OpCost::new(10.0, 0.4),
            sort: OpCost::new(4.0, 1.0),
            sink: OpCost::per_tuple(0.1),
        }
    }
}

impl Default for CostProfile {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_section_4_4_scan() {
        let p = CostProfile::paper();
        assert!((p.scan.per_tuple - 9.66).abs() < 1e-12);
        assert!((p.scan.out_per_tuple - 10.34).abs() < 1e-12);
        // Scan p (one consumer) = 20 per unit progress, the paper's
        // p_max for Q6.
        assert_eq!(p.scan.input_cost(100) + p.scan.output_cost(100), 2000);
    }

    #[test]
    fn join_output_cost_is_insignificant_vs_scan() {
        let p = CostProfile::paper();
        assert!(p.join_probe.out_per_tuple < p.scan.out_per_tuple / 10.0);
    }
}
