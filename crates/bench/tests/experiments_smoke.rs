//! Integration: the experiment harness behind the figure binaries runs
//! end-to-end at a tiny scale and produces sane measurements — the
//! same code path CI would need to regenerate every figure.

use cordoba_bench::experiments::{query_work, sharing_speedup, ExpConfig};
use cordoba_bench::output::ascii_chart;
use cordoba_workload::q6;

#[test]
fn q6_speedup_point_measures_both_modes() {
    let cfg = ExpConfig::quick();
    let catalog = cfg.catalog();
    let spec = q6(&cfg.costs);
    let work = query_work(&catalog, &spec);
    assert!(work > 0, "solo profiling measured no work");
    let point = sharing_speedup(&catalog, &spec, 4, 2, work, 6);
    assert!(point.shared > 0.0, "shared throughput not measured");
    assert!(point.unshared > 0.0, "unshared throughput not measured");
    assert!(point.z.is_finite() && point.z > 0.0, "Z = {}", point.z);
    assert_eq!((point.clients, point.contexts), (4, 2));
}

#[test]
fn q6_sharing_beats_unshared_on_a_uniprocessor() {
    // The paper's headline Q6 effect at the measurement level: on one
    // context a shared batch outruns the unshared one.
    let cfg = ExpConfig::quick();
    let catalog = cfg.catalog();
    let spec = q6(&cfg.costs);
    let work = query_work(&catalog, &spec);
    let point = sharing_speedup(&catalog, &spec, 8, 1, work, 6);
    assert!(
        point.z > 1.0,
        "sharing should win on 1 context: Z = {}",
        point.z
    );
}

#[test]
fn ascii_chart_renders_every_series() {
    let chart = ascii_chart(
        "title",
        "y",
        &[
            ("shared".to_string(), vec![(1.0, 1.0), (2.0, 2.0)]),
            ("unshared".to_string(), vec![(1.0, 2.0), (2.0, 1.0)]),
        ],
    );
    assert!(chart.contains("title"));
    assert!(chart.contains("shared") && chart.contains("unshared"));
}
