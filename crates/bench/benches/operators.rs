//! Criterion micro-benchmarks for the operator layer: raw host-side
//! throughput of scans, filters, aggregation, and joins (independent of
//! the virtual-cost model).

use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::{reference, JoinKind, OpCost, PhysicalPlan};
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::Catalog;
use cordoba_workload::{q1, q13, q4, q6, CostProfile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.005,
        seed: 1,
        ..TpchConfig::default()
    })
}

fn scan_filter(c: &mut Criterion) {
    let cat = catalog();
    let rows = cat.expect("lineitem").row_count() as u64;
    let mut g = c.benchmark_group("scan_filter");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(rows));
    let plan = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::Scan {
            table: "lineitem".into(),
            cost: OpCost::default(),
        }),
        predicate: Predicate::col_cmp(1, CmpOp::Lt, 24.0),
        cost: OpCost::default(),
    };
    g.bench_function("lineitem_qty_lt_24", |b| {
        b.iter(|| reference::execute(&cat, &plan).len())
    });
    g.finish();
}

fn aggregate(c: &mut Criterion) {
    let cat = catalog();
    let rows = cat.expect("lineitem").row_count() as u64;
    let mut g = c.benchmark_group("aggregate");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(rows));
    let plan = PhysicalPlan::Aggregate {
        input: Box::new(PhysicalPlan::Scan {
            table: "lineitem".into(),
            cost: OpCost::default(),
        }),
        group_by: vec![5, 6],
        aggs: vec![
            ("s".into(), Agg::Sum(ScalarExpr::Col(2))),
            ("n".into(), Agg::Count),
        ],
        cost: OpCost::default(),
    };
    g.bench_function("group_by_flag_status", |b| {
        b.iter(|| reference::execute(&cat, &plan).len())
    });
    g.finish();
}

fn hash_join(c: &mut Criterion) {
    let cat = catalog();
    let rows = cat.expect("orders").row_count() as u64;
    let mut g = c.benchmark_group("hash_join");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(rows));
    let plan = PhysicalPlan::HashJoin {
        build: Box::new(PhysicalPlan::Scan {
            table: "lineitem".into(),
            cost: OpCost::default(),
        }),
        probe: Box::new(PhysicalPlan::Scan {
            table: "orders".into(),
            cost: OpCost::default(),
        }),
        build_key: 0,
        probe_key: 0,
        kind: JoinKind::Semi,
        build_cost: OpCost::default(),
        probe_cost: OpCost::default(),
    };
    g.bench_function("orders_semi_lineitem", |b| {
        b.iter(|| reference::execute(&cat, &plan).len())
    });
    g.finish();
}

fn full_queries(c: &mut Criterion) {
    let cat = catalog();
    let costs = CostProfile::paper();
    let mut g = c.benchmark_group("tpch_reference");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for spec in [q1(&costs), q6(&costs), q4(&costs), q13(&costs)] {
        g.bench_with_input(BenchmarkId::from_parameter(&spec.name), &spec, |b, spec| {
            b.iter(|| reference::execute(&cat, &spec.plan).len())
        });
    }
    g.finish();
}

criterion_group!(benches, scan_filter, aggregate, hash_join, full_queries);
criterion_main!(benches);
