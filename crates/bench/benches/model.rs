//! Criterion micro-benchmarks for the analytical model: cost of one
//! share/don't-share decision (the paper argues the model is cheap
//! enough to evaluate per arriving query at runtime — this quantifies
//! "cheap").

use cordoba_core::sharing::SharingEvaluator;
use cordoba_core::{HardwareModel, ShareAdvisor};
use cordoba_workload::synthetic::{five_way_split, three_stage_with_s};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn evaluator_build_and_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_decision");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let (plan, pivot) = three_stage_with_s(1.0);
    for m in [2usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("homogeneous_z", m), &m, |b, &m| {
            b.iter(|| {
                SharingEvaluator::homogeneous(&plan, pivot, m)
                    .unwrap()
                    .speedup(32.0)
            })
        });
    }
    g.finish();
}

fn advisor_admission(c: &mut Criterion) {
    let (plan, pivot) = five_way_split(3);
    let advisor = ShareAdvisor::new(HardwareModel::ideal(32));
    c.bench_function("advisor_admission_m16", |b| {
        b.iter(|| advisor.advise_admission(&plan, pivot, 16).unwrap().share)
    });
}

fn phase_decomposition(c: &mut Criterion) {
    use cordoba_core::joins::merge_join;
    use cordoba_core::phases::decompose;
    use cordoba_core::{OperatorSpec, PlanSpec};
    let scan =
        |w: f64| PlanSpec::pipeline(vec![OperatorSpec::new("scan", vec![w], vec![1.0])]).unwrap();
    let (plan, _) = merge_join(&scan(4.0), &scan(6.0), 3.0, 0.5, 1.0, 0.5, false, false).unwrap();
    c.bench_function("decompose_merge_join", |b| {
        b.iter(|| decompose(&plan).unwrap().len())
    });
}

criterion_group!(
    benches,
    evaluator_build_and_speedup,
    advisor_admission,
    phase_decomposition
);
criterion_main!(benches);
