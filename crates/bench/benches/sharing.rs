//! Criterion benchmarks for the engine's sharing machinery: wall-clock
//! cost of a simulated shared vs unshared Q6 batch, and of the real
//! thread executor.

use cordoba_engine::{run_once, thread_exec, EngineConfig, Policy};
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::Catalog;
use cordoba_workload::{q6, CostProfile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.002,
        seed: 2,
        ..TpchConfig::default()
    })
}

fn simulated_batch(c: &mut Criterion) {
    let cat = catalog();
    let spec = q6(&CostProfile::paper());
    let mut g = c.benchmark_group("sim_q6_batch_of_4");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (label, policy) in [
        ("shared", Policy::AlwaysShare),
        ("unshared", Policy::NeverShare),
    ] {
        let cfg = EngineConfig {
            contexts: 8,
            policy,
            ..EngineConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| run_once(&cat, &vec![spec.clone(); 4], cfg).makespan)
        });
    }
    g.finish();
}

fn threaded_batch(c: &mut Criterion) {
    let cat = catalog();
    let spec = q6(&CostProfile::paper());
    let mut g = c.benchmark_group("threads_q6_batch_of_4");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("shared", |b| {
        b.iter(|| thread_exec::run_shared(&cat, &spec, 4).results.len())
    });
    g.bench_function("unshared", |b| {
        b.iter(|| thread_exec::run_unshared(&cat, &spec, 4, 2).results.len())
    });
    g.finish();
}

criterion_group!(benches, simulated_batch, threaded_batch);
criterion_main!(benches);
