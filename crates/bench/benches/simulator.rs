//! Criterion micro-benchmarks for the discrete-event simulator:
//! scheduling overhead per step, channel ops, and pipeline throughput
//! as context count grows.

use cordoba_sim::channel::{self, Recv};
use cordoba_sim::{Simulator, Step, Task, TaskCtx};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

struct Burn {
    steps: u32,
}
impl Task for Burn {
    fn step(&mut self, _: &mut TaskCtx<'_>) -> Step {
        if self.steps == 0 {
            return Step::done(0);
        }
        self.steps -= 1;
        Step::yielded(3)
    }
}

struct Source {
    tx: channel::Sender<Arc<u64>>,
    n: u64,
}
impl Task for Source {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        if self.n == 0 {
            self.tx.close(ctx);
            return Step::done(0);
        }
        match self.tx.try_send(Arc::new(self.n), ctx) {
            Ok(()) => {
                self.n -= 1;
                Step::yielded(5)
            }
            Err(_) => Step::blocked(0),
        }
    }
}

struct Drain {
    rx: channel::Receiver<Arc<u64>>,
}
impl Task for Drain {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        match self.rx.try_recv(ctx) {
            Recv::Value(_) => Step::yielded(5),
            Recv::Empty => Step::blocked(0),
            Recv::Closed => Step::done(0),
        }
    }
}

fn scheduler_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    const STEPS: u32 = 50_000;
    g.throughput(Throughput::Elements(STEPS as u64));
    for contexts in [1usize, 4, 32] {
        g.bench_with_input(
            BenchmarkId::new("burn_steps", contexts),
            &contexts,
            |b, &n| {
                b.iter(|| {
                    let mut sim = Simulator::new(n);
                    for _ in 0..n.min(8) {
                        sim.spawn(
                            "burn",
                            Box::new(Burn {
                                steps: STEPS / n.min(8) as u32,
                            }),
                        );
                    }
                    sim.run_to_idle();
                    sim.now()
                })
            },
        );
    }
    g.finish();
}

fn channel_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel_pipeline");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    const ITEMS: u64 = 20_000;
    g.throughput(Throughput::Elements(ITEMS));
    for cap in [2usize, 16, 128] {
        g.bench_with_input(
            BenchmarkId::new("producer_consumer", cap),
            &cap,
            |b, &cap| {
                b.iter(|| {
                    let mut sim = Simulator::new(2);
                    let (tx, rx) = channel::bounded(cap);
                    sim.spawn("src", Box::new(Source { tx, n: ITEMS }));
                    sim.spawn("dst", Box::new(Drain { rx }));
                    sim.run_to_idle();
                    sim.now()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, scheduler_steps, channel_pipeline);
criterion_main!(benches);
