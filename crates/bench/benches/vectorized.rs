//! Criterion micro-benchmarks for the vectorized execution path:
//! every group times the tuple-at-a-time baseline against the
//! compiled/vectorized kernel over the same TPC-H pages (the same
//! pairs `bench_ops` records into `BENCH_ops.json`).

use cordoba_bench::vec_kernels::*;
use cordoba_exec::vexpr::{CompiledExpr, CompiledPredicate, ExprScratch};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn data() -> BenchData {
    BenchData::generate(0.005)
}

fn configure(g: &mut criterion::BenchmarkGroup<'_>, rows: usize) {
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.throughput(Throughput::Elements(rows as u64));
}

fn filter(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let pred = q6_predicate();
    let compiled = CompiledPredicate::compile(&pred, &d.lineitem_schema);
    let mut scratch = ExprScratch::default();
    let mut sel = Vec::new();
    let mut g = c.benchmark_group("filter");
    configure(&mut g, rows);
    g.bench_function("baseline_tuple_at_a_time", |b| {
        b.iter(|| filter_baseline(&d.lineitem, &pred))
    });
    g.bench_function("vectorized_selection_vector", |b| {
        b.iter(|| filter_vectorized(&d.lineitem, &compiled, &mut scratch, &mut sel))
    });
    g.finish();
}

fn expr(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let e = revenue_expr();
    let compiled = CompiledExpr::compile(&e, &d.lineitem_schema);
    let mut scratch = ExprScratch::default();
    let mut col = Vec::new();
    let mut g = c.benchmark_group("expr_eval");
    configure(&mut g, rows);
    g.bench_function("baseline_tree_walk", |b| {
        b.iter(|| expr_baseline(&d.lineitem, &e))
    });
    g.bench_function("vectorized_compiled_program", |b| {
        b.iter(|| expr_vectorized(&d.lineitem, &compiled, &mut scratch, &mut col))
    });
    g.finish();
}

fn join_build(c: &mut Criterion) {
    let d = data();
    let rows = d.orders_rows();
    let mut g = c.benchmark_group("join_build");
    configure(&mut g, rows);
    g.bench_function("baseline_siphash_boxed_rows", |b| {
        b.iter(|| join_build_baseline(&d.orders, 0))
    });
    g.bench_function("vectorized_arena_fxhash", |b| {
        b.iter(|| join_build_vectorized(&d.orders, 0, d.orders_schema.row_width()))
    });
    g.finish();
}

fn join_probe(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let base_table = join_build_baseline(&d.orders, 0);
    let vec_table = join_build_vectorized(&d.orders, 0, d.orders_schema.row_width());
    let mut keys = Vec::new();
    let mut g = c.benchmark_group("join_probe");
    configure(&mut g, rows);
    g.bench_function("baseline_per_tuple_lookup", |b| {
        b.iter(|| join_probe_baseline(&base_table, &d.lineitem, 0))
    });
    g.bench_function("vectorized_gathered_keys", |b| {
        b.iter(|| join_probe_vectorized(&vec_table, &d.lineitem, 0, &mut keys))
    });
    g.finish();
}

fn aggregate(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let e = revenue_expr();
    let compiled = CompiledExpr::compile(&e, &d.lineitem_schema);
    let group_by = q1_group_by();
    let mut scratch = ExprScratch::default();
    let mut col = Vec::new();
    let mut g = c.benchmark_group("aggregate");
    configure(&mut g, rows);
    g.bench_function("baseline_keyof_btreemap", |b| {
        b.iter(|| aggregate_baseline(&d.lineitem, &group_by, &e))
    });
    g.bench_function("vectorized_packed_keys", |b| {
        b.iter(|| {
            aggregate_vectorized(
                &d.lineitem,
                &d.lineitem_schema,
                &group_by,
                &compiled,
                &mut scratch,
                &mut col,
            )
        })
    });
    g.finish();
}

fn q6_end_to_end(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let pred = q6_predicate();
    let e = revenue_expr();
    let cpred = CompiledPredicate::compile(&pred, &d.lineitem_schema);
    let cexpr = CompiledExpr::compile(&e, &d.lineitem_schema);
    let mut scratch = ExprScratch::default();
    let (mut sel, mut col) = (Vec::new(), Vec::new());
    let mut g = c.benchmark_group("q6_end_to_end");
    configure(&mut g, rows);
    g.bench_function("baseline_tuple_at_a_time", |b| {
        b.iter(|| q6_baseline(&d.lineitem, &pred, &e))
    });
    g.bench_function("vectorized_pipeline", |b| {
        b.iter(|| {
            q6_vectorized(
                &d.lineitem,
                &cpred,
                &cexpr,
                &mut scratch,
                &mut sel,
                &mut col,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    filter,
    expr,
    join_build,
    join_probe,
    aggregate,
    q6_end_to_end
);
criterion_main!(benches);
