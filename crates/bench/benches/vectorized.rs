//! Criterion micro-benchmarks for the vectorized execution path:
//! every group times the tuple-at-a-time baseline against the
//! compiled/vectorized kernel over the same TPC-H pages (the same
//! pairs `bench_ops` records into `BENCH_ops.json`).

use cordoba_bench::vec_kernels::*;
use cordoba_exec::ops::{KeyScratch, PackedKeySpec};
use cordoba_exec::vexpr::{CompiledExpr, CompiledPredicate, ExprScratch};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn data() -> BenchData {
    BenchData::generate(0.005)
}

fn configure(g: &mut criterion::BenchmarkGroup<'_>, rows: usize) {
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.throughput(Throughput::Elements(rows as u64));
}

fn filter(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let pred = q6_predicate();
    let compiled = CompiledPredicate::compile(&pred, &d.lineitem_schema).expect("compiles");
    let mut scratch = ExprScratch::default();
    let mut sel = Vec::new();
    let mut g = c.benchmark_group("filter");
    configure(&mut g, rows);
    g.bench_function("baseline_tuple_at_a_time", |b| {
        b.iter(|| filter_baseline(&d.lineitem, &pred))
    });
    g.bench_function("vectorized_selection_vector", |b| {
        b.iter(|| filter_vectorized(&d.lineitem, &compiled, &mut scratch, &mut sel))
    });
    g.finish();
}

fn expr(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let e = revenue_expr();
    let compiled = CompiledExpr::compile(&e, &d.lineitem_schema).expect("compiles");
    let mut scratch = ExprScratch::default();
    let mut col = Vec::new();
    let mut g = c.benchmark_group("expr_eval");
    configure(&mut g, rows);
    g.bench_function("baseline_tree_walk", |b| {
        b.iter(|| expr_baseline(&d.lineitem, &e))
    });
    g.bench_function("vectorized_compiled_program", |b| {
        b.iter(|| expr_vectorized(&d.lineitem, &compiled, &mut scratch, &mut col))
    });
    g.finish();
}

fn join_build(c: &mut Criterion) {
    let d = data();
    let rows = d.orders_rows();
    let mut g = c.benchmark_group("join_build");
    configure(&mut g, rows);
    g.bench_function("baseline_siphash_boxed_rows", |b| {
        b.iter(|| join_build_baseline(&d.orders, 0))
    });
    g.bench_function("vectorized_arena_fxhash", |b| {
        b.iter(|| join_build_vectorized(&d.orders, 0, d.orders_schema.row_width()))
    });
    g.finish();
}

fn join_probe(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let base_table = join_build_baseline(&d.orders, 0);
    let vec_table = join_build_vectorized(&d.orders, 0, d.orders_schema.row_width());
    let mut keys = Vec::new();
    let mut g = c.benchmark_group("join_probe");
    configure(&mut g, rows);
    g.bench_function("baseline_per_tuple_lookup", |b| {
        b.iter(|| join_probe_baseline(&base_table, &d.lineitem, 0))
    });
    g.bench_function("vectorized_gathered_keys", |b| {
        b.iter(|| join_probe_vectorized(&vec_table, &d.lineitem, 0, &mut keys))
    });
    g.finish();
}

fn aggregate(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let e = revenue_expr();
    let compiled = CompiledExpr::compile(&e, &d.lineitem_schema).expect("compiles");
    let group_by = q1_group_by();
    let mut scratch = ExprScratch::default();
    let mut col = Vec::new();
    let mut g = c.benchmark_group("aggregate");
    configure(&mut g, rows);
    g.bench_function("baseline_keyof_btreemap", |b| {
        b.iter(|| aggregate_baseline(&d.lineitem, &group_by, &e))
    });
    g.bench_function("vectorized_packed_keys", |b| {
        b.iter(|| {
            aggregate_vectorized(
                &d.lineitem,
                &d.lineitem_schema,
                &group_by,
                &compiled,
                &mut scratch,
                &mut col,
            )
        })
    });
    g.finish();
}

fn q6_end_to_end(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let pred = q6_predicate();
    let e = revenue_expr();
    let cpred = CompiledPredicate::compile(&pred, &d.lineitem_schema).expect("compiles");
    let cexpr = CompiledExpr::compile(&e, &d.lineitem_schema).expect("compiles");
    let mut scratch = ExprScratch::default();
    let (mut sel, mut col) = (Vec::new(), Vec::new());
    let mut g = c.benchmark_group("q6_end_to_end");
    configure(&mut g, rows);
    g.bench_function("baseline_tuple_at_a_time", |b| {
        b.iter(|| q6_baseline(&d.lineitem, &pred, &e))
    });
    g.bench_function("vectorized_pipeline", |b| {
        b.iter(|| {
            q6_vectorized(
                &d.lineitem,
                &cpred,
                &cexpr,
                &mut scratch,
                &mut sel,
                &mut col,
            )
        })
    });
    g.finish();
}

fn sort(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let keys = [7usize]; // l_shipdate
    let spec = PackedKeySpec::try_new(&d.lineitem_schema, &keys).expect("4-byte key");
    let mut scratch = KeyScratch::default();
    let mut packed = Vec::new();
    let mut g = c.benchmark_group("sort");
    configure(&mut g, rows);
    g.bench_function("baseline_keyof_boxed_rows", |b| {
        b.iter(|| sort_baseline(&d.lineitem, &keys))
    });
    g.bench_function("vectorized_packed_u64_keys", |b| {
        b.iter(|| sort_vectorized(&d.lineitem, &spec, &mut scratch, &mut packed))
    });
    g.finish();
}

fn merge_join(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows() + d.orders_rows();
    let mut buf = Vec::new();
    let mut g = c.benchmark_group("merge_join");
    configure(&mut g, rows);
    g.bench_function("baseline_per_tuple_get_int", |b| {
        b.iter(|| merge_join_baseline(&d.orders, &d.lineitem, 0, 0))
    });
    g.bench_function("vectorized_gathered_keys", |b| {
        b.iter(|| merge_join_vectorized(&d.orders, &d.lineitem, 0, 0, &mut buf))
    });
    g.finish();
}

fn nlj(c: &mut Criterion) {
    let d = data();
    let (outer, inner, pred, pair) = nlj_config(&d);
    let cpred = CompiledPredicate::compile(&pred, &pair).expect("compiles");
    let pairs = outer.iter().map(|p| p.rows()).sum::<usize>()
        * inner.iter().map(|p| p.rows()).sum::<usize>();
    let mut scratch = ExprScratch::default();
    let mut sel = Vec::new();
    let mut g = c.benchmark_group("nlj");
    configure(&mut g, pairs);
    g.bench_function("baseline_one_row_page_per_pair", |b| {
        b.iter(|| nlj_baseline(&outer, &inner, &pred, &pair))
    });
    g.bench_function("vectorized_candidate_pages", |b| {
        b.iter(|| nlj_vectorized(&outer, &inner, &cpred, &pair, &mut scratch, &mut sel))
    });
    g.finish();
}

fn fused_literal(c: &mut Criterion) {
    let d = data();
    let rows = d.lineitem_rows();
    let e = revenue_expr();
    let unfused = CompiledExpr::compile_unfused(&e, &d.lineitem_schema).expect("compiles");
    let fused = CompiledExpr::compile(&e, &d.lineitem_schema).expect("compiles");
    let mut scratch = ExprScratch::default();
    let mut col = Vec::new();
    let mut g = c.benchmark_group("fused_literal");
    configure(&mut g, rows);
    g.bench_function("broadcast_literal_buffers", |b| {
        b.iter(|| expr_vectorized(&d.lineitem, &unfused, &mut scratch, &mut col))
    });
    g.bench_function("fused_scalar_literal_instrs", |b| {
        b.iter(|| expr_vectorized(&d.lineitem, &fused, &mut scratch, &mut col))
    });
    g.finish();
}

criterion_group!(
    benches,
    filter,
    expr,
    join_build,
    join_probe,
    aggregate,
    q6_end_to_end,
    sort,
    merge_join,
    nlj,
    fused_literal
);
criterion_main!(benches);
