//! Open-system service-loop tail-latency harness: drives the release
//! engine through the [`cordoba_bench::service_kernels`] scenarios
//! (Suite A fan-out/fan-in/scalability, Suite B Poisson/burst/chaos/
//! saturation) and records counts, throughput, and p50/p99/p999
//! response-time quantiles. Everything is deterministic simulator
//! virtual time under fixed seeds with morsel workers pinned to 1, so
//! the committed numbers reproduce bit-for-bit on any host.
//!
//! Writes `BENCH_service.json` to the current directory (run from the
//! repo root; override the path with `CORDOBA_BENCH_SERVICE`) plus one
//! machine-readable `results/service/<scenario>/summary.json` per
//! scenario.
//!
//! Usage: `cargo run --release -p cordoba-bench --bin bench_service`
//! * `-- --quick` — accepted for CI symmetry with `bench_ops`; the
//!   scenarios are already smoke-sized and deterministic, so quick runs
//!   execute the identical suite.
//! * `-- --filter <substr>` — run only scenarios whose name contains
//!   the substring (print-only: never rewrites the JSON).
//! * `-- --check <path>` — compare fresh counts and tail quantiles
//!   against a committed `BENCH_service.json` instead of writing one;
//!   exits non-zero on a gross regression, naming each offender.

use cordoba_bench::service_kernels::{self, ServicePoint};

/// A scenario's fresh p50/p99/p999 may grow to this multiple of the
/// committed value before `--check` fails. The numbers are
/// deterministic virtual time, so in principle the gate could demand
/// equality; the slack lets legitimate engine-timing changes land by
/// regenerating the file while still catching order-of-magnitude tail
/// blowups immediately.
const LATENCY_TOLERANCE: f64 = 2.0;

/// Completed-count drift allowed before `--check` fails (fraction of
/// the committed count, floored at 2 queries).
const COUNT_TOLERANCE: f64 = 0.25;

fn scenario_json(p: &ServicePoint, indent: &str) -> String {
    format!(
        concat!(
            "{i}{{\n",
            "{i}  \"name\": \"{}\",\n",
            "{i}  \"suite\": \"{}\",\n",
            "{i}  \"contexts\": {},\n",
            "{i}  \"capacity\": {},\n",
            "{i}  \"offered\": {},\n",
            "{i}  \"completed\": {},\n",
            "{i}  \"failed\": {},\n",
            "{i}  \"rejected\": {},\n",
            "{i}  \"in_flight\": {},\n",
            "{i}  \"makespan\": {},\n",
            "{i}  \"throughput\": {:.9},\n",
            "{i}  \"utilization\": {:.4},\n",
            "{i}  \"mean_group\": {:.3},\n",
            "{i}  \"latency\": {{ \"count\": {}, \"min\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {} }},\n",
            "{i}  \"note\": \"{}\"\n",
            "{i}}}"
        ),
        p.name,
        p.suite,
        p.contexts,
        p.capacity,
        p.offered,
        p.completed,
        p.failed,
        p.rejected,
        p.in_flight,
        p.makespan,
        p.throughput,
        p.utilization,
        p.mean_group,
        p.latency.count,
        p.latency.min,
        p.latency.mean,
        p.latency.p50,
        p.latency.p90,
        p.latency.p99,
        p.latency.p999,
        p.latency.max,
        p.note,
        i = indent,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let filter: Option<String> = args
        .iter()
        .position(|a| a == "--filter")
        .and_then(|at| args.get(at + 1).cloned());
    let want = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));
    eprintln!(
        "bench_service: sf=0.002, deterministic virtual time, workers pinned to 1{}",
        if quick { " (--quick: same suite)" } else { "" }
    );
    if let Some(f) = &filter {
        eprintln!("bench_service: --filter '{f}' (print-only; BENCH_service.json not rewritten)");
    }

    let cat = service_kernels::catalog();
    let points = service_kernels::run_all(&cat, want);
    if points.is_empty() {
        eprintln!("bench_service: no scenario matched the filter");
        return;
    }

    for p in &points {
        println!(
            "{:<20} [{}] n={} cap={:<2} {:>3} offered: {:>3}c/{}f/{}r/{}i  p50 {:>9} p99 {:>9} p999 {:>9}  util {:.2}  group {:.2}",
            p.name,
            p.suite,
            p.contexts,
            p.capacity,
            p.offered,
            p.completed,
            p.failed,
            p.rejected,
            p.in_flight,
            p.latency.p50,
            p.latency.p99,
            p.latency.p999,
            p.utilization,
            p.mean_group,
        );
    }

    // Regression-check mode: compare against the committed trajectory
    // instead of writing one.
    if let Some(at) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(at + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_service.json".to_string());
        if !check_against(&path, &points) {
            std::process::exit(1);
        }
        return;
    }

    if filter.is_some() {
        eprintln!("bench_service: filtered run, skipping BENCH_service.json");
        return;
    }

    // Per-scenario machine-readable summaries.
    for p in &points {
        let dir = format!("results/service/{}", p.name);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("bench_service: cannot create {dir}: {e}");
            continue;
        }
        let body = format!("{}\n", scenario_json(p, ""));
        let path = format!("{dir}/summary.json");
        std::fs::write(&path, body).expect("write scenario summary");
    }

    let path =
        std::env::var("CORDOBA_BENCH_SERVICE").unwrap_or_else(|_| "BENCH_service.json".to_string());
    let body: Vec<String> = points.iter().map(|p| scenario_json(p, "    ")).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"open-system service loop: tail-latency scenarios (Suite A fan-out/scale, Suite B Poisson/burst/chaos/saturation)\",\n",
            "  \"harness\": \"crates/bench/src/bin/bench_service.rs (deterministic simulator virtual time, fixed seeds, workers pinned to 1)\",\n",
            "  \"scale_factor\": 0.002,\n",
            "  \"invariant\": \"offered == completed + failed + rejected + in_flight, asserted per run\",\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        body.join(",\n")
    );
    std::fs::write(&path, json).expect("write BENCH_service.json");
    eprintln!("wrote {path} and results/service/<scenario>/summary.json");
}

/// Committed per-scenario numbers the gate compares against.
struct Committed {
    name: String,
    completed: f64,
    p50: f64,
    p99: f64,
    p999: f64,
}

/// Parses the committed `BENCH_service.json` — a hand-rolled line scan,
/// like `bench_ops`: the file is written by this binary, so the shape
/// is known exactly. The `latency` object lives on one line, so p50/
/// p99/p999 are extracted from it by key.
fn committed_numbers(body: &str) -> Vec<Committed> {
    fn field(line: &str, key: &str) -> Option<f64> {
        let at = line.find(&format!("\"{key}\": "))?;
        let rest = &line[at + key.len() + 4..];
        let end = rest.find([',', ' ', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    }
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    let mut completed: Option<f64> = None;
    for line in body.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            name = rest.strip_suffix("\",").map(str::to_string);
            completed = None;
        } else if let Some(v) = field(line, "completed") {
            completed = Some(v);
        } else if line.starts_with("\"latency\": {") {
            if let (Some(n), Some(c), Some(p50), Some(p99), Some(p999)) = (
                name.take(),
                completed.take(),
                field(line, "p50"),
                field(line, "p99"),
                field(line, "p999"),
            ) {
                out.push(Committed {
                    name: n,
                    completed: c,
                    p50,
                    p99,
                    p999,
                });
            }
        }
    }
    out
}

/// Compares each scenario's fresh completed count and tail quantiles
/// against the committed record; prints one verdict line per scenario.
/// Returns `false` when anything grossly regressed, naming every
/// offender. Scenarios present on only one side are reported but don't
/// fail (newly added scenarios land with their first committed file).
fn check_against(path: &str, fresh: &[ServicePoint]) -> bool {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_service check: cannot read {path}: {e}");
            return false;
        }
    };
    let committed = committed_numbers(&body);
    let mut offenders: Vec<String> = Vec::new();
    for p in fresh {
        let Some(base) = committed.iter().find(|c| c.name == p.name) else {
            println!(
                "{:<20} (no committed record; fresh p99 {})",
                p.name, p.latency.p99
            );
            continue;
        };
        let mut bad: Vec<String> = Vec::new();
        let count_slack = (base.completed * COUNT_TOLERANCE).max(2.0);
        if (p.completed as f64 - base.completed).abs() > count_slack {
            bad.push(format!(
                "completed {} vs committed {:.0}",
                p.completed, base.completed
            ));
        }
        for (what, fresh_q, base_q) in [
            ("p50", p.latency.p50 as f64, base.p50),
            ("p99", p.latency.p99 as f64, base.p99),
            ("p999", p.latency.p999 as f64, base.p999),
        ] {
            if fresh_q > base_q * LATENCY_TOLERANCE {
                bad.push(format!("{what} {fresh_q:.0} vs committed {base_q:.0}"));
            }
        }
        println!(
            "{:<20} committed p50/p99/p999 {:.0}/{:.0}/{:.0}  fresh {}/{}/{}  {}",
            p.name,
            base.p50,
            base.p99,
            base.p999,
            p.latency.p50,
            p.latency.p99,
            p.latency.p999,
            if bad.is_empty() { "ok" } else { "REGRESSED" }
        );
        if !bad.is_empty() {
            offenders.push(format!("{} ({})", p.name, bad.join("; ")));
        }
    }
    if !offenders.is_empty() {
        eprintln!(
            "bench_service check: {} scenario(s) regressed vs {path}: {} \
             (tail quantiles may grow at most {LATENCY_TOLERANCE}x; regenerate the file for intended changes)",
            offenders.len(),
            offenders.join(", ")
        );
        return false;
    }
    true
}
