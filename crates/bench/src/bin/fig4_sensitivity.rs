//! Figure 4: model sensitivity analysis (Section 6) on the synthetic
//! 3-stage query (bottom p=10, pivot w=6 s=1, top p=10):
//!
//! * left — predicted speedup vs clients for n ∈ {1,4,8,12,16,24,32};
//! * center — at 32 CPUs, sweep the pivot's per-consumer cost
//!   s ∈ {0, .25, .5, 1, 2, 4};
//! * right — at 8 CPUs, sweep the fraction of work below the pivot by
//!   moving the five split stages down one at a time (28%…98%);
//! * workers — at 32 CPUs, sweep intra-query morsel workers
//!   k ∈ {1,2,4,8,16} with ideal scaling (κ = 1): the aggressive-
//!   scheduling counterargument, priced by the same model.

use cordoba_bench::output::{announce, ascii_chart, f, write_csv};
use cordoba_core::sharing::{SharingEvaluator, WorkerScaling};
use cordoba_workload::synthetic::{eliminated_fraction, five_way_split, three_stage_with_s};

const CLIENTS: [usize; 9] = [1, 2, 4, 8, 12, 16, 20, 30, 40];

fn z(plan: &cordoba_core::PlanSpec, pivot: cordoba_core::NodeId, m: usize, n: f64) -> f64 {
    SharingEvaluator::homogeneous(plan, pivot, m)
        .expect("synthetic plan valid")
        .speedup(n)
}

fn left() {
    let (plan, pivot) = three_stage_with_s(1.0);
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for n in [1usize, 4, 8, 12, 16, 24, 32] {
        let pts: Vec<(f64, f64)> = CLIENTS
            .iter()
            .map(|&m| (m as f64, z(&plan, pivot, m, n as f64)))
            .collect();
        for &(m, zv) in &pts {
            rows.push(vec![n.to_string(), (m as usize).to_string(), f(zv)]);
        }
        series.push((format!("{n} CPU"), pts));
    }
    println!(
        "{}",
        ascii_chart(
            "Figure 4 left: Z vs clients as processors vary",
            "Z",
            &series
        )
    );
    announce(&write_csv(
        "fig4_left_cpus.csv",
        &["contexts", "clients", "z"],
        &rows,
    ));
}

fn center() {
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for s in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let (plan, pivot) = three_stage_with_s(s);
        let pts: Vec<(f64, f64)> = CLIENTS
            .iter()
            .map(|&m| (m as f64, z(&plan, pivot, m, 32.0)))
            .collect();
        for &(m, zv) in &pts {
            rows.push(vec![format!("{s}"), (m as usize).to_string(), f(zv)]);
        }
        series.push((format!("s={s}"), pts));
    }
    println!(
        "{}",
        ascii_chart(
            "Figure 4 center: Z vs clients as serial cost s varies (32 CPU)",
            "Z",
            &series
        )
    );
    announce(&write_csv(
        "fig4_center_serial.csv",
        &["s", "clients", "z"],
        &rows,
    ));
}

fn right() {
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for moved in 0..=5usize {
        let (plan, pivot) = five_way_split(moved);
        let frac = eliminated_fraction(moved);
        let pts: Vec<(f64, f64)> = CLIENTS
            .iter()
            .map(|&m| (m as f64, z(&plan, pivot, m, 8.0)))
            .collect();
        for &(m, zv) in &pts {
            rows.push(vec![
                moved.to_string(),
                format!("{:.0}%", frac * 100.0),
                (m as usize).to_string(),
                f(zv),
            ]);
        }
        series.push((format!("{moved}/5 ({:.0}%)", frac * 100.0), pts));
    }
    println!(
        "{}",
        ascii_chart(
            "Figure 4 right: Z vs clients as work below pivot varies (8 CPU)",
            "Z",
            &series
        )
    );
    announce(&write_csv(
        "fig4_right_fraction.csv",
        &["moved_below", "eliminated", "clients", "z"],
        &rows,
    ));
}

fn workers() {
    // The unshared side's pivot scales with k (it serves one consumer);
    // the shared pivot keeps its serial Σ s_mφ. With processors to
    // spare, every added worker therefore erodes Z — sharing's residual
    // value is whatever the multiplexing floor leaves.
    let (plan, pivot) = three_stage_with_s(1.0);
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for k in [1u32, 2, 4, 8, 16] {
        let scaling = WorkerScaling::ideal(k).expect("k >= 1");
        let pts: Vec<(f64, f64)> = CLIENTS
            .iter()
            .map(|&m| {
                let z = SharingEvaluator::homogeneous(&plan, pivot, m)
                    .expect("synthetic plan valid")
                    .speedup_with_workers(32.0, scaling);
                (m as f64, z)
            })
            .collect();
        for &(m, zv) in &pts {
            rows.push(vec![k.to_string(), (m as usize).to_string(), f(zv)]);
        }
        series.push((format!("k={k}"), pts));
    }
    println!(
        "{}",
        ascii_chart(
            "Figure 4 workers: Z vs clients as morsel workers vary (32 CPU, ideal scaling)",
            "Z",
            &series
        )
    );
    announce(&write_csv(
        "fig4_workers.csv",
        &["workers", "clients", "z"],
        &rows,
    ));
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    println!("Figure 4: predicted speedup of work sharing (analytical model, Section 6)");
    match which.as_str() {
        "cpus" => left(),
        "serial" => center(),
        "fraction" => right(),
        "workers" => workers(),
        _ => {
            left();
            center();
            right();
            workers();
        }
    }
}
