//! Regenerates every figure in one pass by invoking the per-figure
//! binaries' logic; writes all CSVs under `results/`.
//!
//! Usage: `cargo run -p cordoba-bench --release --bin all_figures [--quick]`

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let figures = [
        "fig1_q6_sharing",
        "fig2_speedups",
        "fig4_sensitivity",
        "fig5_validation",
        "fig6_policies",
        "sec44_params",
        "ablations",
    ];
    for figure in figures {
        println!("\n===================== {figure} =====================");
        let mut cmd = Command::new(exe_dir.join(figure));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("running {figure}: {e}"));
        assert!(status.success(), "{figure} failed with {status}");
    }
    println!("\nAll figures regenerated; CSVs in results/.");
}
