//! Figure 6: always-share vs never-share vs model-guided policies on a
//! Q1/Q4 mix, as the Q4 fraction varies 0–100%. Left panel: 20 clients
//! on 2 processors (sharing is broadly beneficial → always ≈ model >
//! never). Right panel: 20 clients on 32 processors (indiscriminate
//! sharing collapses → model > never > always; the paper reports the
//! model beating never-share by ~20% and always-share by ~2.5x on
//! average).

use cordoba_bench::experiments::{policy_comparison, profile_all, ExpConfig};
use cordoba_bench::output::{announce, ascii_chart, f, write_csv};
use cordoba_workload::{q1, q4};

fn panel(cfg: &ExpConfig, clients: usize, contexts: usize, csv: &str) -> (f64, f64) {
    let catalog = cfg.catalog();
    let models = profile_all(&catalog, &[q1(&cfg.costs), q4(&cfg.costs)]);
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    let mut never_series = Vec::new();
    let mut always_series = Vec::new();
    let mut model_series = Vec::new();
    let mut sum_model_over_never = 0.0;
    let mut sum_model_over_always = 0.0;
    for &frac in &fractions {
        let p = policy_comparison(
            &catalog,
            &cfg.costs,
            &models,
            clients,
            contexts,
            frac,
            cfg.measure_floor,
        );
        println!(
            "{:>8.0}% {:>12.4} {:>12.4} {:>12.4}",
            frac * 100.0,
            p.never * 1e6,
            p.always * 1e6,
            p.model * 1e6
        );
        rows.push(vec![format!("{frac}"), f(p.never), f(p.always), f(p.model)]);
        never_series.push((frac * 100.0, p.never * 1e6));
        always_series.push((frac * 100.0, p.always * 1e6));
        model_series.push((frac * 100.0, p.model * 1e6));
        sum_model_over_never += p.model / p.never.max(1e-12);
        sum_model_over_always += p.model / p.always.max(1e-12);
    }
    println!(
        "{}",
        ascii_chart(
            &format!("Figure 6 ({clients} clients, {contexts} CPUs): throughput by policy"),
            "q/Munit",
            &[
                ("never".to_string(), never_series),
                ("always".to_string(), always_series),
                ("model".to_string(), model_series),
            ],
        )
    );
    announce(&write_csv(
        csv,
        &["q4_fraction", "never", "always", "model"],
        &rows,
    ));
    (
        sum_model_over_never / fractions.len() as f64,
        sum_model_over_always / fractions.len() as f64,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    println!("Figure 6: policy comparison on a Q1/Q4 mix");
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "q4 frac", "never", "always", "model"
    );
    if which == "small" || which == "all" || which == "--quick" {
        let (vs_never, vs_always) = panel(&cfg, 20, 2, "fig6_2cpu.csv");
        println!("2 CPUs: model/never = {vs_never:.2}x, model/always = {vs_always:.2}x\n");
    }
    if which == "large" || which == "all" || which == "--quick" {
        // 24 clients rather than the paper's 20: our simulated CMP is
        // contention-free, so slightly more load is needed to reach the
        // saturation the T1 hit at 20 clients through cache/bandwidth
        // contention (see EXPERIMENTS.md).
        let (vs_never, vs_always) = panel(&cfg, 24, 32, "fig6_32cpu.csv");
        println!(
            "32 CPUs: model/never = {vs_never:.2}x (paper ~1.2x), model/always = {vs_always:.2}x (paper ~2.5x)"
        );
    }
}
