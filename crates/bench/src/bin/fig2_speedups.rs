//! Figure 2: measured sharing speedup for the scan-heavy queries
//! (Q1, Q6 — left panel) and join-heavy queries (Q4, Q13 — right
//! panel), for 1/2/8/32 CPUs and 1–48 clients.

use cordoba_bench::experiments::{speedup_sweep, ExpConfig, SpeedupPoint};
use cordoba_bench::output::{announce, ascii_chart, f, write_csv};
use cordoba_engine::QuerySpec;
use cordoba_workload::{q1, q13, q4, q6};

fn panel(cfg: &ExpConfig, specs: &[QuerySpec], csv: &str, title: &str) {
    let catalog = cfg.catalog();
    let clients = [1usize, 2, 4, 8, 16, 24, 32, 48];
    let contexts = [1usize, 2, 8, 32];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for spec in specs {
        let points: Vec<SpeedupPoint> =
            speedup_sweep(&catalog, spec, &clients, &contexts, cfg.measure_floor);
        for &n in &contexts {
            series.push((
                format!("{n} cpu {}", spec.name),
                points
                    .iter()
                    .filter(|p| p.contexts == n)
                    .map(|p| (p.clients as f64, p.z))
                    .collect(),
            ));
        }
        for p in &points {
            println!(
                "{:>4} {:>4} {:>8} {:>12.6} {:>12.6} {:>8.3}",
                spec.name,
                p.contexts,
                p.clients,
                p.shared * 1e6,
                p.unshared * 1e6,
                p.z
            );
            rows.push(vec![
                spec.name.clone(),
                p.contexts.to_string(),
                p.clients.to_string(),
                f(p.shared),
                f(p.unshared),
                f(p.z),
            ]);
        }
    }
    println!("{}", ascii_chart(title, "Z", &series));
    let path = write_csv(
        csv,
        &[
            "query",
            "contexts",
            "clients",
            "x_shared",
            "x_unshared",
            "z",
        ],
        &rows,
    );
    announce(&path);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    println!(
        "Figure 2: measured sharing speedups (SF = {})",
        cfg.scale_factor
    );
    println!(
        "{:>4} {:>4} {:>8} {:>12} {:>12} {:>8}",
        "q", "cpu", "clients", "x_shared", "x_unshared", "Z"
    );
    if which == "scan" || which == "all" || which == "--quick" {
        panel(
            &cfg,
            &[q1(&cfg.costs), q6(&cfg.costs)],
            "fig2_scan_heavy.csv",
            "Figure 2 left: scan-heavy (Q1, Q6)",
        );
    }
    if which == "join" || which == "all" || which == "--quick" {
        panel(
            &cfg,
            &[q4(&cfg.costs), q13(&cfg.costs)],
            "fig2_join_heavy.csv",
            "Figure 2 right: join-heavy (Q4, Q13)",
        );
    }
}
