//! Operator hot-path micro-benchmark harness: times the paired
//! baseline (tuple-at-a-time) vs vectorized kernels from
//! [`cordoba_bench::vec_kernels`] and writes `BENCH_ops.json` to the
//! current directory (run from the repo root; override the path with
//! `CORDOBA_BENCH_OPS`). This file is the perf trajectory record:
//! every entry carries both sides plus the speedup, so regressions and
//! wins are visible across PRs.
//!
//! Usage: `cargo run --release -p cordoba-bench --bin bench_ops`
//! * `-- --quick` — CI smoke runs: fewer samples, smaller scale factor.
//! * `-- --filter <substr>` — run only kernels whose name contains the
//!   substring (print-only: a filtered run never rewrites the JSON).
//! * `-- --check <path>` — compare the fresh within-run speedups
//!   against a committed `BENCH_ops.json` instead of writing one;
//!   exits non-zero on a gross regression, naming each offending
//!   kernel with its committed and fresh speedups.
//!
//! Besides the baseline-vs-vectorized pairs, the harness records a
//! `"parallel"` section from [`cordoba_bench::par_kernels`]: serial
//! wiring vs morsel-parallel wiring at 4 workers. The pipeline and
//! aggregate pairs are simulator virtual time (deterministic,
//! host-independent); the hash-join pair is real threads and wall
//! clock.

use cordoba_bench::par_kernels::{self, ParPair};
use cordoba_bench::spill_kernels;
use cordoba_bench::subsume_kernels::{self, SubsumePoint};
use cordoba_bench::vec_kernels::*;
use cordoba_exec::ops::{KeyScratch, PackedKeySpec};
use cordoba_exec::reference;
use cordoba_exec::vexpr::{CompiledExpr, CompiledPredicate, ExprScratch};
use cordoba_storage::PAGE_SIZE;
use cordoba_workload::FamilyConfig;
use std::hint::black_box;
use std::time::Instant;

/// A kernel's fresh within-run speedup (baseline / vectorized, both
/// timed in the same process on the same host) may shrink to this
/// fraction of the committed speedup before `--check` fails. The ratio
/// is machine-independent — a slow CI runner scales both sides equally
/// — so the gate catches a kernel silently falling back toward the
/// tuple-at-a-time path without flaking on host speed. Generous on
/// purpose: quick runs use a smaller scale factor and shared runners
/// are noisy.
const CHECK_TOLERANCE: f64 = 3.0;

/// Morsel workers for the parallel section.
const PAR_WORKERS: usize = 4;

/// Median wall-clock nanoseconds over `samples` runs of `f`.
fn median_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    // One warm-up run to fault in data and warm caches.
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Entry {
    name: &'static str,
    rows: usize,
    baseline_ns: f64,
    vectorized_ns: f64,
    note: &'static str,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.vectorized_ns
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"rows\": {},\n",
                "      \"baseline_ns_per_row\": {:.2},\n",
                "      \"vectorized_ns_per_row\": {:.2},\n",
                "      \"speedup\": {:.2},\n",
                "      \"note\": \"{}\"\n",
                "    }}"
            ),
            self.name,
            self.rows,
            self.baseline_ns / self.rows as f64,
            self.vectorized_ns / self.rows as f64,
            self.speedup(),
            self.note,
        )
    }
}

fn par_json(p: &ParPair) -> String {
    format!(
        concat!(
            "      {{\n",
            "        \"name\": \"{}\",\n",
            "        \"rows\": {},\n",
            "        \"workers\": {},\n",
            "        \"substrate\": \"{}\",\n",
            "        \"serial\": {:.0},\n",
            "        \"parallel\": {:.0},\n",
            "        \"speedup\": {:.2},\n",
            "        \"note\": \"{}\"\n",
            "      }}"
        ),
        p.name,
        p.rows,
        p.workers,
        p.substrate,
        p.serial,
        p.parallel,
        p.speedup(),
        p.note,
    )
}

fn subsume_json(p: &SubsumePoint) -> String {
    let predicted = if p.predicted_z.is_nan() {
        "null".to_string()
    } else {
        format!("{:.3}", p.predicted_z)
    };
    let agrees = match p.advisor_agrees() {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    format!(
        concat!(
            "      {{\n",
            "        \"name\": \"{}\",\n",
            "        \"queries\": {},\n",
            "        \"contexts\": {},\n",
            "        \"unshared_vt\": {:.0},\n",
            "        \"shared_vt\": {:.0},\n",
            "        \"speedup\": {:.3},\n",
            "        \"predicted_z\": {},\n",
            "        \"advisor_agrees\": {},\n",
            "        \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {} }},\n",
            "        \"subsume_joins\": {},\n",
            "        \"note\": \"{}\"\n",
            "      }}"
        ),
        p.name,
        p.queries,
        p.contexts,
        p.unshared_vt,
        p.shared_vt,
        p.measured_z(),
        predicted,
        agrees,
        p.hits,
        p.misses,
        p.evictions,
        p.subsume_joins,
        p.note,
    )
}

fn policy_json(name: &str, p: &cordoba_bench::subsume_kernels::PolicyPoint) -> String {
    format!(
        concat!(
            "      {{\n",
            "        \"name\": \"{}\",\n",
            "        \"contexts\": {},\n",
            "        \"never_vt\": {:.0},\n",
            "        \"always_vt\": {:.0},\n",
            "        \"model_vt\": {:.0},\n",
            "        \"always_z\": {:.3},\n",
            "        \"speedup\": {:.3},\n",
            "        \"model_groups\": {:?},\n",
            "        \"note\": \"batch makespans under never/always/model-guided sharing; speedup = never/model\"\n",
            "      }}"
        ),
        name,
        p.contexts,
        p.never,
        p.always,
        p.model,
        p.always_z(),
        p.model_z(),
        p.model_groups,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let filter: Option<String> = args
        .iter()
        .position(|a| a == "--filter")
        .and_then(|at| args.get(at + 1).cloned());
    let want = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));
    let (sf, samples) = if quick { (0.002, 5) } else { (0.02, 15) };
    let data = BenchData::generate(sf);
    let li_rows = data.lineitem_rows();
    let ord_rows = data.orders_rows();
    eprintln!(
        "bench_ops: sf={sf} lineitem={li_rows} rows, orders={ord_rows} rows, {samples} samples"
    );
    if let Some(f) = &filter {
        eprintln!("bench_ops: --filter '{f}' (print-only; BENCH_ops.json not rewritten)");
    }

    let mut scratch = ExprScratch::default();
    let mut entries = Vec::new();

    // Filter: Q6 predicate over lineitem.
    let pred = q6_predicate();
    let cpred = CompiledPredicate::compile(&pred, &data.lineitem_schema).expect("compiles");
    let mut sel = Vec::new();
    if want("filter_q6") {
        entries.push(Entry {
            name: "filter_q6",
            rows: li_rows,
            baseline_ns: median_ns(samples, || filter_baseline(&data.lineitem, &pred)),
            vectorized_ns: median_ns(samples, || {
                filter_vectorized(&data.lineitem, &cpred, &mut scratch, &mut sel)
            }),
            note: "Q6 predicate -> selection vector",
        });
    }

    // Expression: revenue over lineitem.
    let expr = revenue_expr();
    let cexpr = CompiledExpr::compile(&expr, &data.lineitem_schema).expect("compiles");
    let mut col = Vec::new();
    if want("expr_revenue") {
        entries.push(Entry {
            name: "expr_revenue",
            rows: li_rows,
            baseline_ns: median_ns(samples, || expr_baseline(&data.lineitem, &expr)),
            vectorized_ns: median_ns(samples, || {
                expr_vectorized(&data.lineitem, &cexpr, &mut scratch, &mut col)
            }),
            note: "extendedprice * (1 - discount), compiled postfix program",
        });
    }

    // Join build: orders keyed by o_orderkey.
    if want("join_build_orders") {
        entries.push(Entry {
            name: "join_build_orders",
            rows: ord_rows,
            baseline_ns: median_ns(samples, || join_build_baseline(&data.orders, 0)),
            vectorized_ns: median_ns(samples, || {
                join_build_vectorized(&data.orders, 0, data.orders_schema.row_width())
            }),
            note: "arena + chained offsets + FxHash; zero per-row allocations",
        });
    }

    // Join probe: lineitem probing the orders table.
    if want("join_probe_lineitem") {
        let base_table = join_build_baseline(&data.orders, 0);
        let vec_table = join_build_vectorized(&data.orders, 0, data.orders_schema.row_width());
        let mut keys = Vec::new();
        entries.push(Entry {
            name: "join_probe_lineitem",
            rows: li_rows,
            baseline_ns: median_ns(samples, || {
                join_probe_baseline(&base_table, &data.lineitem, 0)
            }),
            vectorized_ns: median_ns(samples, || {
                join_probe_vectorized(&vec_table, &data.lineitem, 0, &mut keys)
            }),
            note: "gathered keys + FxHash lookup over arena chains",
        });
    }

    // Aggregate: Q1 grouping with the revenue expression.
    if want("aggregate_q1") {
        let group_by = q1_group_by();
        entries.push(Entry {
            name: "aggregate_q1",
            rows: li_rows,
            baseline_ns: median_ns(samples, || {
                aggregate_baseline(&data.lineitem, &group_by, &expr)
            }),
            vectorized_ns: median_ns(samples, || {
                aggregate_vectorized(
                    &data.lineitem,
                    &data.lineitem_schema,
                    &group_by,
                    &cexpr,
                    &mut scratch,
                    &mut col,
                )
            }),
            note: "packed u64 group keys + pre-evaluated input column",
        });
    }

    // End-to-end Q6: filter -> repack -> revenue sum, both shapes.
    if want("q6_end_to_end") {
        entries.push(Entry {
            name: "q6_end_to_end",
            rows: li_rows,
            baseline_ns: median_ns(samples, || q6_baseline(&data.lineitem, &pred, &expr)),
            vectorized_ns: median_ns(samples, || {
                q6_vectorized(
                    &data.lineitem,
                    &cpred,
                    &cexpr,
                    &mut scratch,
                    &mut sel,
                    &mut col,
                )
            }),
            note: "selection vector -> dense repack -> compiled revenue over filtered pages",
        });
    }

    // Fused scalar-literal instructions: the same compiled revenue
    // program with literal broadcasting (the pre-fusion codegen) vs the
    // fused MulFLit/SubLitF form.
    if want("expr_fused_literal") {
        let unfused =
            CompiledExpr::compile_unfused(&expr, &data.lineitem_schema).expect("compiles");
        entries.push(Entry {
            name: "expr_fused_literal",
            rows: li_rows,
            baseline_ns: median_ns(samples, || {
                expr_vectorized(&data.lineitem, &unfused, &mut scratch, &mut col)
            }),
            vectorized_ns: median_ns(samples, || {
                expr_vectorized(&data.lineitem, &cexpr, &mut scratch, &mut col)
            }),
            note: "broadcast literal buffers vs fused MulFLit/SubLitF in-place passes",
        });
    }

    // Sort: key extraction + sort by l_shipdate over lineitem.
    if want("sort_shipdate") {
        let sort_keys = [7usize];
        let spec = PackedKeySpec::try_new(&data.lineitem_schema, &sort_keys).expect("4-byte key");
        let mut kscratch = KeyScratch::default();
        let mut packed_keys = Vec::new();
        entries.push(Entry {
            name: "sort_shipdate",
            rows: li_rows,
            baseline_ns: median_ns(samples, || sort_baseline(&data.lineitem, &sort_keys)),
            vectorized_ns: median_ns(samples, || {
                sort_vectorized(&data.lineitem, &spec, &mut kscratch, &mut packed_keys)
            }),
            note: "per-row KeyVal allocation vs packed order-preserving u64 keys",
        });
    }

    // Merge join: orders ⋈ lineitem on orderkey (both generated sorted).
    if want("merge_join_orderkey") {
        let mut merge_buf = Vec::new();
        entries.push(Entry {
            name: "merge_join_orderkey",
            rows: li_rows + ord_rows,
            baseline_ns: median_ns(samples, || {
                merge_join_baseline(&data.orders, &data.lineitem, 0, 0)
            }),
            vectorized_ns: median_ns(samples, || {
                merge_join_vectorized(&data.orders, &data.lineitem, 0, 0, &mut merge_buf)
            }),
            note: "per-tuple get_int + assert vs page gathers + windowed sortedness sweep",
        });
    }

    // NLJ: band join over small page subsets; rows = pairs examined.
    if want("nlj_band_join") {
        let (outer, inner, nlj_pred, pair_schema) = nlj_config(&data);
        let nlj_cpred = CompiledPredicate::compile(&nlj_pred, &pair_schema).expect("compiles");
        let outer_rows: usize = outer.iter().map(|p| p.rows()).sum();
        let inner_rows: usize = inner.iter().map(|p| p.rows()).sum();
        entries.push(Entry {
            name: "nlj_band_join",
            rows: outer_rows * inner_rows,
            baseline_ns: median_ns(samples, || {
                nlj_baseline(&outer, &inner, &nlj_pred, &pair_schema)
            }),
            vectorized_ns: median_ns(samples, || {
                nlj_vectorized(
                    &outer,
                    &inner,
                    &nlj_cpred,
                    &pair_schema,
                    &mut scratch,
                    &mut sel,
                )
            }),
            note: "one-row page + eval per pair vs compiled predicate over candidate pages",
        });
    }

    // Out-of-core scenarios: the same TPC-H sort and hash join once
    // in memory and once past memory — the broker budget is a quarter
    // of the input, so the operators must spill to finish. One checked
    // run per plan asserts the acceptance criteria (outputs equal, peak
    // ≤ 1.25 × budget); the timed pairs record how much the spill path
    // costs (ratios below 1 are expected and fine — the win is bounded
    // memory, not speed).
    let run_spill = want("sort_spill") || want("join_spill");
    let run_par = want("par_scan_filter") || want("par_aggregate") || want("par_hash_join");
    let spill_cat = if run_spill || run_par {
        Some(spill_kernels::catalog(sf))
    } else {
        None
    };
    let mut spill_json = String::new();
    if run_spill {
        let spill_cat = spill_cat.as_ref().expect("catalog built above");
        let spill_samples = if quick { 3 } else { 5 };
        let sort_plan = spill_kernels::sort_plan();
        let join_plan = spill_kernels::join_plan();
        let sort_input = spill_kernels::table_bytes(spill_cat, "lineitem");
        let join_input = spill_kernels::table_bytes(spill_cat, "orders");
        let sort_budget = (sort_input / 4).max(8 * PAGE_SIZE);
        let join_budget = (join_input / 4).max(8 * PAGE_SIZE);

        let sort_mem = spill_kernels::run_plan(spill_cat, &sort_plan, None);
        let sort_oc = spill_kernels::run_plan(spill_cat, &sort_plan, Some(sort_budget));
        assert_eq!(
            sort_oc.rows, sort_mem.rows,
            "external sort diverged from the in-memory sort"
        );
        assert!(
            sort_oc.peak_bytes <= sort_budget + sort_budget / 4,
            "external sort peak {} exceeds 1.25 x budget {sort_budget}",
            sort_oc.peak_bytes
        );
        let join_mem = spill_kernels::run_plan(spill_cat, &join_plan, None);
        let join_oc = spill_kernels::run_plan(spill_cat, &join_plan, Some(join_budget));
        assert_eq!(
            reference::canonicalize(join_oc.rows.clone()),
            reference::canonicalize(join_mem.rows.clone()),
            "spilling hash join diverged from the in-memory join"
        );
        assert!(
            join_oc.peak_bytes <= join_budget + join_budget / 4,
            "spilling join peak {} exceeds 1.25 x budget {join_budget}",
            join_oc.peak_bytes
        );

        if want("sort_spill") {
            entries.push(Entry {
                name: "sort_spill",
                rows: li_rows,
                baseline_ns: median_ns(spill_samples, || {
                    spill_kernels::run_plan(spill_cat, &sort_plan, None)
                        .rows
                        .len()
                }),
                vectorized_ns: median_ns(spill_samples, || {
                    spill_kernels::run_plan(spill_cat, &sort_plan, Some(sort_budget))
                        .rows
                        .len()
                }),
                note: "in-memory sort vs external sorted runs + k-way merge at a 1/4-input budget",
            });
        }
        if want("join_spill") {
            entries.push(Entry {
                name: "join_spill",
                rows: li_rows + ord_rows,
                baseline_ns: median_ns(spill_samples, || {
                    spill_kernels::run_plan(spill_cat, &join_plan, None)
                        .rows
                        .len()
                }),
                vectorized_ns: median_ns(spill_samples, || {
                    spill_kernels::run_plan(spill_cat, &join_plan, Some(join_budget))
                        .rows
                        .len()
                }),
                note: "in-memory hash join vs dynamic hybrid hash join at a 1/4-build budget",
            });
        }

        spill_json = format!(
            concat!(
                "  \"spill\": {{\n",
                "    \"scenario\": \"budget = max(input/4, 8 pages); output equality and peak <= 1.25 x budget asserted in-harness\",\n",
                "    \"sort\": {{ \"input_bytes\": {}, \"budget_bytes\": {}, \"peak_bytes\": {}, \"peak_over_budget\": {:.3}, \"in_memory_peak_bytes\": {} }},\n",
                "    \"join\": {{ \"build_bytes\": {}, \"budget_bytes\": {}, \"peak_bytes\": {}, \"peak_over_budget\": {:.3}, \"in_memory_peak_bytes\": {} }}\n",
                "  }},\n"
            ),
            sort_input,
            sort_budget,
            sort_oc.peak_bytes,
            sort_oc.peak_bytes as f64 / sort_budget as f64,
            sort_mem.peak_bytes,
            join_input,
            join_budget,
            join_oc.peak_bytes,
            join_oc.peak_bytes as f64 / join_budget as f64,
            join_mem.peak_bytes,
        );
        eprintln!(
            "spill: sort peak {}/{} B ({:.2}x budget), join peak {}/{} B ({:.2}x budget)",
            sort_oc.peak_bytes,
            sort_budget,
            sort_oc.peak_bytes as f64 / sort_budget as f64,
            join_oc.peak_bytes,
            join_budget,
            join_oc.peak_bytes as f64 / join_budget as f64,
        );
    }

    // Morsel-parallel section: serial vs 4-worker wiring. The pipeline
    // and aggregate pairs are simulator virtual time (deterministic);
    // the join pair is wall clock over real threads.
    let mut par_pairs: Vec<ParPair> = Vec::new();
    if run_par {
        let cat = spill_cat.as_ref().expect("catalog built above");
        let join_samples = if quick { 1 } else { 3 };
        if want("par_scan_filter") {
            par_pairs.push(par_kernels::virtual_pair(
                cat,
                "par_scan_filter",
                &par_kernels::pipeline_plan(),
                PAR_WORKERS,
                "morsel-parallel scan+filter+project vs serial wiring, virtual makespan",
            ));
        }
        if want("par_aggregate") {
            par_pairs.push(par_kernels::virtual_pair(
                cat,
                "par_aggregate",
                &par_kernels::aggregate_plan(),
                PAR_WORKERS,
                "per-worker partial aggregates merged in worker order, virtual makespan",
            ));
        }
        if want("par_hash_join") {
            par_pairs.push(par_kernels::join_wall_clock_pair(
                cat,
                PAR_WORKERS,
                join_samples,
            ));
        }
    }

    // Subsumption-sharing section: distinct-but-nested query families
    // shared through a wide fragment + residual filters, the fragment
    // cache, and the fig6-style policy comparison. Fixed scale factor
    // and seeds even under --quick — everything here is deterministic
    // simulator virtual time, so the numbers are stable and the gate
    // can be tight.
    let run_subsume = want("subsume_group_m4_n1")
        || want("subsume_group_m8_n4")
        || want("subsume_cache_replay_n1")
        || want("subsume_policy");
    let mut subsume_points: Vec<SubsumePoint> = Vec::new();
    let mut subsume_policy: Vec<(String, subsume_kernels::PolicyPoint)> = Vec::new();
    if run_subsume {
        let sub_cat = subsume_kernels::catalog();
        if want("subsume_group_m4_n1") {
            let p = subsume_kernels::group_scenario(
                &sub_cat,
                "subsume_group_m4_n1",
                &FamilyConfig {
                    seed: 11,
                    families: 1,
                    per_family: 4,
                },
                1,
                "4 nested Q6/Q1-family windows on 1 context: wide fragment + residuals vs private scans",
            );
            assert!(
                p.measured_z() > 1.0,
                "sharing nested fragments on one context must win: z = {:.3}",
                p.measured_z()
            );
            assert_eq!(
                p.advisor_agrees(),
                Some(true),
                "advisor must call the uniprocessor win: predicted {:.3}, measured {:.3}",
                p.predicted_z,
                p.measured_z()
            );
            subsume_points.push(p);
        }
        if want("subsume_group_m8_n4") {
            subsume_points.push(subsume_kernels::group_scenario(
                &sub_cat,
                "subsume_group_m8_n4",
                &FamilyConfig {
                    seed: 13,
                    families: 2,
                    per_family: 4,
                },
                4,
                "two 4-member families on 4 contexts: sharing trades redundant work for lost parallelism",
            ));
        }
        if want("subsume_cache_replay_n1") {
            let p = subsume_kernels::cache_replay_scenario(&sub_cat);
            assert!(
                p.measured_z() > 1.0,
                "cache replay must beat the cold run: z = {:.3}",
                p.measured_z()
            );
            subsume_points.push(p);
        }
        if want("subsume_policy") {
            // Two cost profiles span the paper's win/loss regimes: under
            // paper costs the fragment's per-consumer delivery is cheap
            // and sharing (almost) always wins; under delivery-heavy
            // costs always-share loses at high parallelism and the
            // advisor must decline or downsize the groups.
            let fam = FamilyConfig {
                seed: 17,
                families: 2,
                per_family: 4,
            };
            let profiles = [
                ("subsume_policy", cordoba_workload::CostProfile::paper()),
                (
                    "subsume_policy_heavy",
                    subsume_kernels::delivery_heavy_costs(),
                ),
            ];
            for (prefix, costs) in &profiles {
                for contexts in [2usize, 8] {
                    let point = subsume_kernels::policy_scenario(&sub_cat, costs, &fam, contexts);
                    subsume_policy.push((format!("{prefix}_n{contexts}"), point));
                }
            }
            let wins = &subsume_policy[0].1;
            assert!(
                wins.always_z() > 1.0 && wins.model_z() > 1.0,
                "paper costs at n=2 must be a sharing win: {wins:?}"
            );
            let loses = &subsume_policy[3].1;
            assert!(
                loses.always_z() < 1.0,
                "delivery-heavy costs at n=8 must be a sharing loss: {loses:?}"
            );
            assert!(
                loses.model_z() >= 1.0,
                "the advisor must decline losing groups: {loses:?}"
            );
        }
    }

    for e in &entries {
        println!(
            "{:<22} {:>10} rows  baseline {:>8.2} ns/row  vectorized {:>8.2} ns/row  speedup {:>5.2}x",
            e.name,
            e.rows,
            e.baseline_ns / e.rows as f64,
            e.vectorized_ns / e.rows as f64,
            e.speedup()
        );
    }
    for p in &par_pairs {
        println!(
            "{:<22} {:>10} rows  serial {:>12.0} {}  {}-worker {:>12.0}  speedup {:>5.2}x",
            p.name,
            p.rows,
            p.serial,
            if p.substrate == "sim-vtime" {
                "vt"
            } else {
                "ns"
            },
            p.workers,
            p.parallel,
            p.speedup()
        );
    }
    for p in &subsume_points {
        println!(
            "{:<22} {:>2} queries n={} unshared {:>11.0} vt  shared {:>11.0} vt  z {:>5.2}x  \
             predicted {:>5.2}  cache {}h/{}m/{}e  subsume-joins {}",
            p.name,
            p.queries,
            p.contexts,
            p.unshared_vt,
            p.shared_vt,
            p.measured_z(),
            p.predicted_z,
            p.hits,
            p.misses,
            p.evictions,
            p.subsume_joins,
        );
    }
    for (name, p) in &subsume_policy {
        println!(
            "{:<22} n={}  makespan never {:>9.0}  always {:>9.0}  model {:>9.0}  z(always) {:>5.2}  z(model) {:>5.2}  groups {:?}",
            name,
            p.contexts,
            p.never,
            p.always,
            p.model,
            p.always_z(),
            p.model_z(),
            p.model_groups,
        );
    }

    // Fresh (name, speedup) pairs for the regression gate: vectorized
    // kernels, parallel pairs, and subsume scenarios alike.
    let fresh: Vec<(String, f64)> = entries
        .iter()
        .map(|e| (e.name.to_string(), e.speedup()))
        .chain(par_pairs.iter().map(|p| (p.name.to_string(), p.speedup())))
        .chain(
            subsume_points
                .iter()
                .map(|p| (p.name.to_string(), p.measured_z())),
        )
        .chain(subsume_policy.iter().map(|(n, p)| (n.clone(), p.model_z())))
        .collect();

    // Regression-check mode: compare against a committed BENCH_ops.json
    // instead of writing one.
    if let Some(at) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(at + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_ops.json".to_string());
        if !check_against(&path, &fresh) {
            std::process::exit(1);
        }
        return;
    }

    if filter.is_some() {
        eprintln!("bench_ops: filtered run, skipping BENCH_ops.json");
        return;
    }

    let path = std::env::var("CORDOBA_BENCH_OPS").unwrap_or_else(|_| "BENCH_ops.json".to_string());
    let subsume_scen: Vec<String> = subsume_points.iter().map(subsume_json).collect();
    let subsume_pol: Vec<String> = subsume_policy
        .iter()
        .map(|(n, p)| policy_json(n, p))
        .collect();
    let subsume_section = format!(
        concat!(
            "  \"subsume\": {{\n",
            "    \"substrate\": \"deterministic simulator virtual time at a fixed scale factor and seeds (quick runs use the same data)\",\n",
            "    \"scenarios\": [\n{}\n    ],\n",
            "    \"policy\": [\n{}\n    ]\n",
            "  }},\n"
        ),
        subsume_scen.join(",\n"),
        subsume_pol.join(",\n"),
    );
    let par_body: Vec<String> = par_pairs.iter().map(par_json).collect();
    let par_section = format!(
        concat!(
            "  \"parallel\": {{\n",
            "    \"workers\": {},\n",
            "    \"substrates\": \"pipeline/aggregate pairs are deterministic simulator virtual time; the join pair is wall clock over real threads\",\n",
            "    \"pairs\": [\n{}\n    ]\n",
            "  }},\n"
        ),
        PAR_WORKERS,
        par_body.join(",\n")
    );
    let body: Vec<String> = entries.iter().map(Entry::json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"operator hot-path microbenchmarks (baseline tuple-at-a-time vs vectorized)\",\n",
            "  \"harness\": \"crates/bench/src/bin/bench_ops.rs (median of {} samples)\",\n",
            "  \"scale_factor\": {},\n",
            "  \"quick\": {},\n",
            "  \"join_build\": {{ \"arena_backed\": true, \"per_row_heap_allocations\": 0 }},\n",
            "{}",
            "{}",
            "{}",
            "  \"benches\": [\n{}\n  ]\n",
            "}}\n"
        ),
        samples,
        sf,
        quick,
        spill_json,
        par_section,
        subsume_section,
        body.join(",\n")
    );
    std::fs::write(&path, json).expect("write BENCH_ops.json");
    eprintln!("wrote {path}");
}

/// Parses the committed `BENCH_ops.json` into `(name, speedup)` pairs.
/// Hand-rolled line scan — the file is written by this binary, so the
/// shape is known exactly; entries from both `benches` and
/// `parallel.pairs` are picked up.
fn committed_numbers(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in body.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            name = rest.strip_suffix("\",").map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"speedup\": ") {
            if let (Some(n), Ok(v)) = (name.take(), rest.trim_end_matches(',').parse::<f64>()) {
                out.push((n, v));
            }
        }
    }
    out
}

/// Compares each kernel's fresh within-run speedup against the
/// committed one with [`CHECK_TOLERANCE`]; prints one verdict line per
/// shared entry. Returns `false` when any kernel grossly regressed,
/// naming every offender with its committed and fresh numbers.
/// Entries present on only one side (newly added kernels) are reported
/// but don't fail.
fn check_against(path: &str, fresh: &[(String, f64)]) -> bool {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench check: cannot read {path}: {e}");
            return false;
        }
    };
    let committed = committed_numbers(&body);
    let mut offenders: Vec<String> = Vec::new();
    for (name, fresh_speedup) in fresh {
        match committed.iter().find(|(n, _)| n == name) {
            Some(&(_, base)) => {
                let regressed = *fresh_speedup < base / CHECK_TOLERANCE;
                println!(
                    "{:<22} committed speedup {:>6.2}x  fresh {:>6.2}x  {}",
                    name,
                    base,
                    fresh_speedup,
                    if regressed { "REGRESSED" } else { "ok" }
                );
                if regressed {
                    offenders.push(format!(
                        "{name} (committed {base:.2}x, fresh {fresh_speedup:.2}x)"
                    ));
                }
            }
            None => println!(
                "{:<22} (no committed speedup; fresh {fresh_speedup:.2}x)",
                name
            ),
        }
    }
    if !offenders.is_empty() {
        eprintln!(
            "bench check: {} kernel(s) collapsed more than {CHECK_TOLERANCE}x vs {path}: {} \
             (a vectorized path likely fell back to tuple-at-a-time)",
            offenders.len(),
            offenders.join(", ")
        );
        return false;
    }
    true
}
