//! Operator hot-path micro-benchmark harness: times the paired
//! baseline (tuple-at-a-time) vs vectorized kernels from
//! [`cordoba_bench::vec_kernels`] and writes `BENCH_ops.json` to the
//! current directory (run from the repo root; override the path with
//! `CORDOBA_BENCH_OPS`). This file is the perf trajectory record:
//! every entry carries both sides plus the speedup, so regressions and
//! wins are visible across PRs.
//!
//! Usage: `cargo run --release -p cordoba-bench --bin bench_ops`
//! (append `-- --quick` for CI smoke runs: fewer samples, smaller
//! scale factor).

use cordoba_bench::vec_kernels::*;
use cordoba_exec::vexpr::{CompiledExpr, CompiledPredicate, ExprScratch};
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock nanoseconds over `samples` runs of `f`.
fn median_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    // One warm-up run to fault in data and warm caches.
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Entry {
    name: &'static str,
    rows: usize,
    baseline_ns: f64,
    vectorized_ns: f64,
    note: &'static str,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.vectorized_ns
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"rows\": {},\n",
                "      \"baseline_ns_per_row\": {:.2},\n",
                "      \"vectorized_ns_per_row\": {:.2},\n",
                "      \"speedup\": {:.2},\n",
                "      \"note\": \"{}\"\n",
                "    }}"
            ),
            self.name,
            self.rows,
            self.baseline_ns / self.rows as f64,
            self.vectorized_ns / self.rows as f64,
            self.speedup(),
            self.note,
        )
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sf, samples) = if quick { (0.002, 5) } else { (0.02, 15) };
    let data = BenchData::generate(sf);
    let li_rows = data.lineitem_rows();
    let ord_rows = data.orders_rows();
    eprintln!(
        "bench_ops: sf={sf} lineitem={li_rows} rows, orders={ord_rows} rows, {samples} samples"
    );

    let mut scratch = ExprScratch::default();
    let mut entries = Vec::new();

    // Filter: Q6 predicate over lineitem.
    let pred = q6_predicate();
    let cpred = CompiledPredicate::compile(&pred, &data.lineitem_schema);
    let mut sel = Vec::new();
    entries.push(Entry {
        name: "filter_q6",
        rows: li_rows,
        baseline_ns: median_ns(samples, || filter_baseline(&data.lineitem, &pred)),
        vectorized_ns: median_ns(samples, || {
            filter_vectorized(&data.lineitem, &cpred, &mut scratch, &mut sel)
        }),
        note: "Q6 predicate -> selection vector",
    });

    // Expression: revenue over lineitem.
    let expr = revenue_expr();
    let cexpr = CompiledExpr::compile(&expr, &data.lineitem_schema);
    let mut col = Vec::new();
    entries.push(Entry {
        name: "expr_revenue",
        rows: li_rows,
        baseline_ns: median_ns(samples, || expr_baseline(&data.lineitem, &expr)),
        vectorized_ns: median_ns(samples, || {
            expr_vectorized(&data.lineitem, &cexpr, &mut scratch, &mut col)
        }),
        note: "extendedprice * (1 - discount), compiled postfix program",
    });

    // Join build: orders keyed by o_orderkey.
    entries.push(Entry {
        name: "join_build_orders",
        rows: ord_rows,
        baseline_ns: median_ns(samples, || join_build_baseline(&data.orders, 0)),
        vectorized_ns: median_ns(samples, || {
            join_build_vectorized(&data.orders, 0, data.orders_schema.row_width())
        }),
        note: "arena + chained offsets + FxHash; zero per-row allocations",
    });

    // Join probe: lineitem probing the orders table.
    let base_table = join_build_baseline(&data.orders, 0);
    let vec_table = join_build_vectorized(&data.orders, 0, data.orders_schema.row_width());
    let mut keys = Vec::new();
    entries.push(Entry {
        name: "join_probe_lineitem",
        rows: li_rows,
        baseline_ns: median_ns(samples, || {
            join_probe_baseline(&base_table, &data.lineitem, 0)
        }),
        vectorized_ns: median_ns(samples, || {
            join_probe_vectorized(&vec_table, &data.lineitem, 0, &mut keys)
        }),
        note: "gathered keys + FxHash lookup over arena chains",
    });

    // Aggregate: Q1 grouping with the revenue expression.
    let group_by = q1_group_by();
    entries.push(Entry {
        name: "aggregate_q1",
        rows: li_rows,
        baseline_ns: median_ns(samples, || {
            aggregate_baseline(&data.lineitem, &group_by, &expr)
        }),
        vectorized_ns: median_ns(samples, || {
            aggregate_vectorized(
                &data.lineitem,
                &data.lineitem_schema,
                &group_by,
                &cexpr,
                &mut scratch,
                &mut col,
            )
        }),
        note: "packed u64 group keys + pre-evaluated input column",
    });

    // End-to-end Q6: filter -> repack -> revenue sum, both shapes.
    entries.push(Entry {
        name: "q6_end_to_end",
        rows: li_rows,
        baseline_ns: median_ns(samples, || q6_baseline(&data.lineitem, &pred, &expr)),
        vectorized_ns: median_ns(samples, || {
            q6_vectorized(
                &data.lineitem,
                &cpred,
                &cexpr,
                &mut scratch,
                &mut sel,
                &mut col,
            )
        }),
        note: "selection vector -> dense repack -> compiled revenue over filtered pages",
    });

    for e in &entries {
        println!(
            "{:<22} {:>10} rows  baseline {:>8.2} ns/row  vectorized {:>8.2} ns/row  speedup {:>5.2}x",
            e.name,
            e.rows,
            e.baseline_ns / e.rows as f64,
            e.vectorized_ns / e.rows as f64,
            e.speedup()
        );
    }

    let path = std::env::var("CORDOBA_BENCH_OPS").unwrap_or_else(|_| "BENCH_ops.json".to_string());
    let body: Vec<String> = entries.iter().map(Entry::json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"operator hot-path microbenchmarks (baseline tuple-at-a-time vs vectorized)\",\n",
            "  \"harness\": \"crates/bench/src/bin/bench_ops.rs (median of {} samples)\",\n",
            "  \"scale_factor\": {},\n",
            "  \"quick\": {},\n",
            "  \"join_build\": {{ \"arena_backed\": true, \"per_row_heap_allocations\": 0 }},\n",
            "  \"benches\": [\n{}\n  ]\n",
            "}}\n"
        ),
        samples,
        sf,
        quick,
        body.join(",\n")
    );
    std::fs::write(&path, json).expect("write BENCH_ops.json");
    eprintln!("wrote {path}");
}
