//! Ablations for the design choices called out in DESIGN.md:
//!
//! * page-size sweep — with a fixed per-page dispatch overhead, larger
//!   pages amortize it (the locality argument of the paper's §3.2
//!   page-based execution model);
//! * buffer-depth sweep — inter-operator queues from rendezvous-like
//!   depth 1 to deep buffering;
//! * engine-level fan-out cost sweep — the engine-side analog of the
//!   model's Figure 4 center panel;
//! * group-size sweep (paper §8.1) — partitioning m clients into
//!   bounded sharing groups, measured against the model's
//!   `optimal_partition` recommendation.

use cordoba_bench::experiments::{query_work, sharing_speedup, ExpConfig};
use cordoba_bench::output::{announce, f, write_csv};
use cordoba_core::decision::optimal_partition;
use cordoba_engine::profiling::profile_query;
use cordoba_engine::{measure_throughput, EngineConfig, Policy};
use cordoba_exec::OpCost;
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_workload::{q6, CostProfile};

fn page_size_sweep(cfg: &ExpConfig) {
    println!("## ablation: page size under per-page overhead (Q6, 8 clients, 8 CPUs, never-share)");
    let mut rows = Vec::new();
    for page_size in [1024usize, 2048, 4096, 8192, 16384] {
        let catalog = generate(&TpchConfig {
            scale_factor: cfg.scale_factor,
            seed: cfg.seed,
            page_size,
            ..TpchConfig::default()
        });
        // A fixed 200-unit cost per page dispatched: the synchronization
        // the paper's paged execution amortizes.
        let costs = CostProfile {
            scan: OpCost::new(9.66, 10.34).with_per_page(200.0),
            ..cfg.costs
        };
        let spec = q6(&costs);
        let work = query_work(&catalog, &spec);
        let p = sharing_speedup(&catalog, &spec, 8, 8, work, cfg.measure_floor);
        println!(
            "  page {page_size:>6}: unshared tp {:.4}/Munit, Z = {:.3}",
            p.unshared * 1e6,
            p.z
        );
        rows.push(vec![page_size.to_string(), f(p.unshared), f(p.z)]);
    }
    announce(&write_csv(
        "ablation_page_size.csv",
        &["page_size", "x_unshared", "z"],
        &rows,
    ));
}

fn buffer_depth_sweep(cfg: &ExpConfig) {
    println!("## ablation: inter-operator buffer depth (Q6, 8 clients, 8 CPUs, shared)");
    let catalog = cfg.catalog();
    let spec = q6(&cfg.costs);
    let work = query_work(&catalog, &spec);
    let cap = work.saturating_mul(8).saturating_mul(16).max(10_000_000);
    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 16, 64] {
        let ecfg = EngineConfig {
            contexts: 8,
            policy: Policy::AlwaysShare,
            queue_capacity: depth,
            ..EngineConfig::default()
        };
        let tp = measure_throughput(
            &catalog,
            &vec![spec.clone(); 8],
            &ecfg,
            cfg.measure_floor.max(48),
            cap,
        );
        println!(
            "  depth {depth:>3}: shared tp = {:.4}/Munit",
            tp.per_time * 1e6
        );
        rows.push(vec![depth.to_string(), f(tp.per_time)]);
    }
    announce(&write_csv(
        "ablation_buffer_depth.csv",
        &["depth", "x_shared"],
        &rows,
    ));
}

fn fanout_cost_sweep(cfg: &ExpConfig) {
    println!("## ablation: scan fan-out cost s (Q6-shaped, 16 clients, 32 CPUs)");
    let catalog = cfg.catalog();
    let mut rows = Vec::new();
    for s in [0.0, 2.5, 5.0, 10.34, 20.0] {
        let costs = CostProfile {
            scan: OpCost::new(9.66, s),
            ..cfg.costs
        };
        let spec = q6(&costs);
        let work = query_work(&catalog, &spec);
        let p = sharing_speedup(&catalog, &spec, 16, 32, work, cfg.measure_floor);
        println!("  s = {s:>5.2}: Z = {:.3}", p.z);
        rows.push(vec![format!("{s}"), f(p.z)]);
    }
    announce(&write_csv("ablation_fanout_cost.csv", &["s", "z"], &rows));
}

fn group_size_sweep(cfg: &ExpConfig) {
    println!("## ablation: bounded sharing-group size (paper §8.1; Q6, 48 clients, 32 CPUs)");
    let catalog = cfg.catalog();
    let spec = q6(&cfg.costs);
    let work = query_work(&catalog, &spec);
    let clients = vec![spec.clone(); 48];
    let cap = work.saturating_mul(48).saturating_mul(16).max(10_000_000);
    let mut rows = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    for max_group in [1usize, 2, 3, 4, 6, 8, 16, 48] {
        let ecfg = EngineConfig {
            contexts: 32,
            policy: Policy::AlwaysShare,
            max_group,
            ..EngineConfig::default()
        };
        let tp = measure_throughput(&catalog, &clients, &ecfg, 6 * 48, cap).per_time;
        println!("  max_group {max_group:>3}: tp = {:.4}/Munit", tp * 1e6);
        rows.push(vec![max_group.to_string(), f(tp)]);
        if best.is_none_or(|(_, b)| tp > b) {
            best = Some((max_group, tp));
        }
    }
    // Compare with the model's recommended partition.
    let (info, _) =
        profile_query(&catalog, &spec, &EngineConfig::default()).expect("profiling succeeds");
    let partition =
        optimal_partition(&info.plan, info.pivot, 48, 32.0).expect("partition computed");
    let (best_g, best_tp) = best.expect("at least one point");
    println!(
        "  engine-best group size: {best_g} ({:.4}/Munit); model recommends ~{} (predicted {:.4})",
        best_tp * 1e6,
        partition.group_size(),
        partition.rate
    );
    announce(&write_csv(
        "ablation_group_size.csv",
        &["max_group", "x_shared"],
        &rows,
    ));
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "page" => page_size_sweep(&cfg),
        "buffer" => buffer_depth_sweep(&cfg),
        "fanout" => fanout_cost_sweep(&cfg),
        "groups" => group_size_sweep(&cfg),
        _ => {
            page_size_sweep(&cfg);
            buffer_depth_sweep(&cfg);
            fanout_cost_sweep(&cfg);
            group_size_sweep(&cfg);
        }
    }
}
