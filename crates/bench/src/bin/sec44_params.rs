//! Section 4.4 / Section 3.1: parameter extraction for the four
//! queries. Profiles each query with and without sharing and prints the
//! fitted pivot `(w, s)` and per-operator `p` values — the analog of
//! the paper's Q6 example (w = 9.66, s = 10.34, p_agg = 0.97), plus the
//! derived group equations.

use cordoba_bench::experiments::ExpConfig;
use cordoba_bench::output::{announce, f, write_csv};
use cordoba_core::sharing::SharingEvaluator;
use cordoba_engine::profiling::profile_query;
use cordoba_engine::EngineConfig;
use cordoba_workload::queries::all;

fn main() {
    let cfg = ExpConfig::default();
    let catalog = cfg.catalog();
    let mut rows = Vec::new();
    for spec in all(&cfg.costs) {
        let (info, report) = profile_query(&catalog, &spec, &EngineConfig::default())
            .unwrap_or_else(|e| panic!("profiling {} failed: {e}", spec.name));
        println!("== {} ==", spec.name);
        println!(
            "  pivot: w = {:.3}, s = {:.3} (fit rss {:.2e})",
            report.pivot_w, report.pivot_s, report.fit_rss
        );
        for (label, p) in &report.operators {
            println!("  p[{label}] = {p:.3}");
            rows.push(vec![spec.name.clone(), label.clone(), f(*p)]);
        }
        // Derived group equations at m = 16 on 1 and 32 contexts.
        let m = 16usize;
        let ev = SharingEvaluator::homogeneous(&info.plan, info.pivot, m).unwrap();
        println!(
            "  m={m}: p_phi = {:.2}, u'_shared = {:.2}, Z(1 cpu) = {:.2}, Z(32 cpu) = {:.2}",
            ev.pivot_p(),
            ev.shared_total_work(),
            ev.speedup(1.0),
            ev.speedup(32.0)
        );
        rows.push(vec![spec.name.clone(), "pivot_w".into(), f(report.pivot_w)]);
        rows.push(vec![spec.name.clone(), "pivot_s".into(), f(report.pivot_s)]);
    }
    announce(&write_csv(
        "sec44_params.csv",
        &["query", "operator", "p"],
        &rows,
    ));
}
