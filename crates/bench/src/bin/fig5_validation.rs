//! Figure 5: model validation — predicted vs measured sharing speedups
//! for the scan-heavy (Q1, Q6) and join-heavy (Q4, Q13) queries at
//! 1/2/8/32 CPUs. Reports per-point error, the mean/max relative error
//! (the paper: avg 5.7%/5.9%, max 22%/30%), and the binary-decision
//! agreement rate ("the model's recommendations are nearly always
//! correct").
//!
//! The `workers` panel extends validation to the (m clients × k morsel
//! workers) grid: the intra-query scaling exponent κ is re-fitted from
//! solo-query throughput at each worker count (the Section 4.1.4
//! aggregate-bandwidth form, applied within a query), then
//! `Z(m, n, k)` from `speedup_with_workers` is compared against the
//! engine measured at the same worker counts. The host's real-thread κ
//! is reported alongside for contrast.

use cordoba_bench::experiments::{
    fit_sim_kappa, fit_thread_kappa, model_speedup, model_speedup_with_workers, profile_all,
    sharing_speedup_with_workers, speedup_sweep, ExpConfig,
};
use cordoba_bench::output::{announce, f, write_csv};
use cordoba_core::sharing::WorkerScaling;
use cordoba_engine::QuerySpec;
use cordoba_workload::{q1, q13, q4, q6};

struct PanelSummary {
    mean_err: f64,
    max_err: f64,
    decisions: usize,
    agreed: usize,
}

fn panel(cfg: &ExpConfig, specs: &[QuerySpec], csv: &str) -> PanelSummary {
    let catalog = cfg.catalog();
    let clients = [2usize, 4, 8, 16, 24, 32, 48];
    let contexts = [1usize, 2, 8, 32];
    let models = profile_all(&catalog, specs);
    let mut rows = Vec::new();
    let mut errs: Vec<f64> = Vec::new();
    let mut decisions = 0usize;
    let mut agreed = 0usize;
    for spec in specs {
        let measured = speedup_sweep(&catalog, spec, &clients, &contexts, cfg.measure_floor);
        let info = &models[&spec.name];
        for p in &measured {
            let predicted = model_speedup(info, p.clients, p.contexts);
            let err = (predicted - p.z).abs() / p.z.max(1e-9);
            errs.push(err);
            decisions += 1;
            // Binary agreement with a small dead-band around Z = 1 where
            // "share or not" is immaterial (both within noise of parity).
            let deadband = 0.05;
            let material = (p.z - 1.0).abs() > deadband || (predicted - 1.0).abs() > deadband;
            if !material || ((predicted > 1.0) == (p.z > 1.0)) {
                agreed += 1;
            }
            println!(
                "{:>4} {:>4} {:>8} {:>10.3} {:>10.3} {:>8.1}%",
                spec.name,
                p.contexts,
                p.clients,
                p.z,
                predicted,
                err * 100.0
            );
            rows.push(vec![
                spec.name.clone(),
                p.contexts.to_string(),
                p.clients.to_string(),
                f(p.z),
                f(predicted),
                f(err),
            ]);
        }
    }
    announce(&write_csv(
        csv,
        &[
            "query",
            "contexts",
            "clients",
            "z_measured",
            "z_model",
            "rel_error",
        ],
        &rows,
    ));
    PanelSummary {
        mean_err: errs.iter().sum::<f64>() / errs.len() as f64,
        max_err: errs.iter().copied().fold(0.0, f64::max),
        decisions,
        agreed,
    }
}

/// The (m × k) grid: measured vs modeled Z at `contexts` CPUs as both
/// the client count and the per-query morsel worker count vary.
fn worker_panel(cfg: &ExpConfig, spec: &QuerySpec) -> PanelSummary {
    let catalog = cfg.catalog();
    let clients = [2usize, 4, 8, 16];
    let workers = [1usize, 2, 4];
    let contexts = 8usize;
    // κ of the simulated engine (used for the model series — it must
    // describe the same substrate the measurements come from) ...
    let kappa = fit_sim_kappa(&catalog, spec, &workers);
    // ... and κ of the real-thread executor on this host, for contrast.
    let thread_kappa = fit_thread_kappa(&catalog, spec, &[1, 2, 4]);
    println!(
        "worker grid ({}, n={contexts}): sim κ = {kappa:.3}, host thread κ = {thread_kappa:.3}",
        spec.name
    );
    let models = profile_all(&catalog, std::slice::from_ref(spec));
    let info = &models[&spec.name];
    let work = cordoba_bench::experiments::query_work(&catalog, spec);
    let mut rows = Vec::new();
    let mut errs: Vec<f64> = Vec::new();
    let mut decisions = 0usize;
    let mut agreed = 0usize;
    for &k in &workers {
        let scaling = WorkerScaling::new(k as u32, kappa).expect("fitted κ in (0,1]");
        for &m in &clients {
            let p = sharing_speedup_with_workers(
                &catalog,
                spec,
                m,
                contexts,
                k,
                work,
                cfg.measure_floor,
            );
            let predicted = model_speedup_with_workers(info, m, contexts, scaling);
            let err = (predicted - p.z).abs() / p.z.max(1e-9);
            errs.push(err);
            decisions += 1;
            let deadband = 0.05;
            let material = (p.z - 1.0).abs() > deadband || (predicted - 1.0).abs() > deadband;
            if !material || ((predicted > 1.0) == (p.z > 1.0)) {
                agreed += 1;
            }
            println!(
                "{:>4} k={:<2} {:>8} {:>10.3} {:>10.3} {:>8.1}%",
                spec.name,
                k,
                m,
                p.z,
                predicted,
                err * 100.0
            );
            rows.push(vec![
                spec.name.clone(),
                k.to_string(),
                m.to_string(),
                f(kappa),
                f(p.z),
                f(predicted),
                f(err),
            ]);
        }
    }
    announce(&write_csv(
        "fig5_worker_grid.csv",
        &[
            "query",
            "workers",
            "clients",
            "kappa_sim",
            "z_measured",
            "z_model",
            "rel_error",
        ],
        &rows,
    ));
    PanelSummary {
        mean_err: errs.iter().sum::<f64>() / errs.len() as f64,
        max_err: errs.iter().copied().fold(0.0, f64::max),
        decisions,
        agreed,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    println!("Figure 5: model validation (predicted vs measured Z)");
    println!(
        "{:>4} {:>4} {:>8} {:>10} {:>10} {:>9}",
        "q", "cpu", "clients", "measured", "model", "error"
    );
    if which == "scan" || which == "all" || which == "--quick" {
        let s = panel(
            &cfg,
            &[q1(&cfg.costs), q6(&cfg.costs)],
            "fig5_scan_heavy.csv",
        );
        println!(
            "scan-heavy: mean err {:.1}% (paper 5.7%), max {:.1}% (paper 22%), decisions {}/{} correct",
            s.mean_err * 100.0,
            s.max_err * 100.0,
            s.agreed,
            s.decisions
        );
    }
    if which == "join" || which == "all" || which == "--quick" {
        let s = panel(
            &cfg,
            &[q4(&cfg.costs), q13(&cfg.costs)],
            "fig5_join_heavy.csv",
        );
        println!(
            "join-heavy: mean err {:.1}% (paper 5.9%), max {:.1}% (paper 30%), decisions {}/{} correct",
            s.mean_err * 100.0,
            s.max_err * 100.0,
            s.agreed,
            s.decisions
        );
    }
    if which == "workers" || which == "all" || which == "--quick" {
        let s = worker_panel(&cfg, &q6(&cfg.costs));
        println!(
            "worker grid: mean err {:.1}%, max {:.1}%, decisions {}/{} correct",
            s.mean_err * 100.0,
            s.max_err * 100.0,
            s.agreed,
            s.decisions
        );
    }
}
