//! Figure 5: model validation — predicted vs measured sharing speedups
//! for the scan-heavy (Q1, Q6) and join-heavy (Q4, Q13) queries at
//! 1/2/8/32 CPUs. Reports per-point error, the mean/max relative error
//! (the paper: avg 5.7%/5.9%, max 22%/30%), and the binary-decision
//! agreement rate ("the model's recommendations are nearly always
//! correct").

use cordoba_bench::experiments::{model_speedup, profile_all, speedup_sweep, ExpConfig};
use cordoba_bench::output::{announce, f, write_csv};
use cordoba_engine::QuerySpec;
use cordoba_workload::{q1, q13, q4, q6};

struct PanelSummary {
    mean_err: f64,
    max_err: f64,
    decisions: usize,
    agreed: usize,
}

fn panel(cfg: &ExpConfig, specs: &[QuerySpec], csv: &str) -> PanelSummary {
    let catalog = cfg.catalog();
    let clients = [2usize, 4, 8, 16, 24, 32, 48];
    let contexts = [1usize, 2, 8, 32];
    let models = profile_all(&catalog, specs);
    let mut rows = Vec::new();
    let mut errs: Vec<f64> = Vec::new();
    let mut decisions = 0usize;
    let mut agreed = 0usize;
    for spec in specs {
        let measured = speedup_sweep(&catalog, spec, &clients, &contexts, cfg.measure_floor);
        let info = &models[&spec.name];
        for p in &measured {
            let predicted = model_speedup(info, p.clients, p.contexts);
            let err = (predicted - p.z).abs() / p.z.max(1e-9);
            errs.push(err);
            decisions += 1;
            // Binary agreement with a small dead-band around Z = 1 where
            // "share or not" is immaterial (both within noise of parity).
            let deadband = 0.05;
            let material = (p.z - 1.0).abs() > deadband || (predicted - 1.0).abs() > deadband;
            if !material || ((predicted > 1.0) == (p.z > 1.0)) {
                agreed += 1;
            }
            println!(
                "{:>4} {:>4} {:>8} {:>10.3} {:>10.3} {:>8.1}%",
                spec.name,
                p.contexts,
                p.clients,
                p.z,
                predicted,
                err * 100.0
            );
            rows.push(vec![
                spec.name.clone(),
                p.contexts.to_string(),
                p.clients.to_string(),
                f(p.z),
                f(predicted),
                f(err),
            ]);
        }
    }
    announce(&write_csv(
        csv,
        &[
            "query",
            "contexts",
            "clients",
            "z_measured",
            "z_model",
            "rel_error",
        ],
        &rows,
    ));
    PanelSummary {
        mean_err: errs.iter().sum::<f64>() / errs.len() as f64,
        max_err: errs.iter().copied().fold(0.0, f64::max),
        decisions,
        agreed,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    println!("Figure 5: model validation (predicted vs measured Z)");
    println!(
        "{:>4} {:>4} {:>8} {:>10} {:>10} {:>9}",
        "q", "cpu", "clients", "measured", "model", "error"
    );
    if which == "scan" || which == "all" || which == "--quick" {
        let s = panel(
            &cfg,
            &[q1(&cfg.costs), q6(&cfg.costs)],
            "fig5_scan_heavy.csv",
        );
        println!(
            "scan-heavy: mean err {:.1}% (paper 5.7%), max {:.1}% (paper 22%), decisions {}/{} correct",
            s.mean_err * 100.0,
            s.max_err * 100.0,
            s.agreed,
            s.decisions
        );
    }
    if which == "join" || which == "all" || which == "--quick" {
        let s = panel(
            &cfg,
            &[q4(&cfg.costs), q13(&cfg.costs)],
            "fig5_join_heavy.csv",
        );
        println!(
            "join-heavy: mean err {:.1}% (paper 5.9%), max {:.1}% (paper 30%), decisions {}/{} correct",
            s.mean_err * 100.0,
            s.max_err * 100.0,
            s.agreed,
            s.decisions
        );
    }
}
