//! Figure 1: speedup of sharing part of TPC-H Q6 relative to
//! never-share execution, as clients grow from 1 to 48, for 1/2/8/32
//! CPUs. The paper's headline: sharing helps only on the uniprocessor.

use cordoba_bench::experiments::{speedup_sweep, ExpConfig};
use cordoba_bench::output::{announce, ascii_chart, f, write_csv};
use cordoba_workload::q6;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--quick") {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };
    let catalog = cfg.catalog();
    let spec = q6(&cfg.costs);
    let clients = [1usize, 2, 4, 8, 16, 24, 32, 48];
    let contexts = [1usize, 2, 8, 32];

    println!("Figure 1: sharing speedup for TPC-H Q6 (shared scan) vs never-share");
    println!(
        "clients = {clients:?}, contexts = {contexts:?}, SF = {}",
        cfg.scale_factor
    );
    let points = speedup_sweep(&catalog, &spec, &clients, &contexts, cfg.measure_floor);

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &n in &contexts {
        let pts: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.contexts == n)
            .map(|p| (p.clients as f64, p.z))
            .collect();
        series.push((format!("{n} cpu q6"), pts));
    }
    for p in &points {
        rows.push(vec![
            p.contexts.to_string(),
            p.clients.to_string(),
            f(p.shared),
            f(p.unshared),
            f(p.z),
        ]);
    }
    println!(
        "{}",
        ascii_chart("Speedup Z(m, n) of sharing Q6", "Z", &series)
    );
    println!(
        "{:>4} {:>8} {:>12} {:>12} {:>8}",
        "cpu", "clients", "x_shared", "x_unshared", "Z"
    );
    for p in &points {
        println!(
            "{:>4} {:>8} {:>12.6} {:>12.6} {:>8.3}",
            p.contexts,
            p.clients,
            p.shared * 1e6,
            p.unshared * 1e6,
            p.z
        );
    }
    let path = write_csv(
        "fig1_q6_sharing.csv",
        &["contexts", "clients", "x_shared", "x_unshared", "z"],
        &rows,
    );
    announce(&path);
}
