//! Morsel-parallelism benchmarks: the same TPC-H plan executed with
//! the classic one-task-per-operator wiring and with `k` morsel
//! workers.
//!
//! Pipeline-shaped plans (scan → filter → project, scan → filter →
//! aggregate) are measured in **simulator virtual time**: the morsel
//! wiring spreads per-tuple work across `k` fused worker tasks on `k`
//! contexts, so the virtual makespan contracts by roughly the work
//! split — a deterministic, host-independent record of what the
//! threading model buys on a `k`-context machine. (Wall clock would be
//! meaningless here: CI containers often pin this harness to one core.)
//!
//! The hash-join pair is the honest counterpoint: it runs the
//! real-thread morsel executor ([`cordoba_exec::parallel`]) and reports
//! wall clock, whatever the host actually delivers.

use cordoba_exec::expr::Agg;
use cordoba_exec::wiring::{self, WiringConfig};
use cordoba_exec::{parallel, OpCost, ParallelConfig, PhysicalPlan};
use cordoba_sim::Simulator;
use cordoba_storage::{Catalog, Value};
use std::hint::black_box;
use std::time::Instant;

use crate::vec_kernels::{q1_group_by, q6_predicate, revenue_expr};

/// One serial-vs-parallel measurement pair.
pub struct ParPair {
    /// Kernel name (stable across PRs; keyed by `--check`).
    pub name: &'static str,
    /// Input rows processed.
    pub rows: usize,
    /// Morsel workers on the parallel side.
    pub workers: usize,
    /// Serial measurement (virtual time units or nanoseconds).
    pub serial: f64,
    /// Parallel measurement in the same units.
    pub parallel: f64,
    /// `"sim-vtime"` or `"wall-clock"`.
    pub substrate: &'static str,
    /// One-line description.
    pub note: &'static str,
}

impl ParPair {
    /// Serial / parallel — how much the morsel wiring contracts the
    /// measurement.
    pub fn speedup(&self) -> f64 {
        self.serial / self.parallel
    }
}

/// Row equality up to float-summation reassociation: merging
/// per-worker partial sums adds `f64` values in a different order than
/// one serial stream, so aggregate outputs may differ in the last few
/// ulps over real TPC-H data. (The proptest equivalence suites pin
/// bit-exact equality separately, using integer-valued floats.)
fn rows_approx_eq(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => {
                        let scale = x.abs().max(y.abs()).max(1.0);
                        (x - y).abs() <= 1e-9 * scale
                    }
                    _ => va == vb,
                })
        })
}

fn scan(table: &str) -> Box<PhysicalPlan> {
    // Scan-dominant costs: reading and filtering the pages is the bulk
    // of the work, which is exactly the shape morsel parallelism
    // targets (the paper's below-pivot `w`).
    Box::new(PhysicalPlan::Scan {
        table: table.into(),
        cost: OpCost::new(4.0, 1.0),
    })
}

/// `σ_q6(lineitem)` projected to revenue — the parallel pipeline shape.
pub fn pipeline_plan() -> PhysicalPlan {
    PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: scan("lineitem"),
            predicate: q6_predicate(),
            cost: OpCost::new(1.0, 0.5),
        }),
        exprs: vec![("revenue".into(), revenue_expr())],
        cost: OpCost::new(1.0, 0.5),
    }
}

/// Q1-style grouped sum over the Q6 selection — the partial-aggregate
/// merge shape.
pub fn aggregate_plan() -> PhysicalPlan {
    PhysicalPlan::Aggregate {
        input: Box::new(PhysicalPlan::Filter {
            input: scan("lineitem"),
            predicate: q6_predicate(),
            cost: OpCost::new(1.0, 0.5),
        }),
        group_by: q1_group_by(),
        aggs: vec![("revenue".into(), Agg::Sum(revenue_expr()))],
        cost: OpCost::new(1.0, 0.5),
    }
}

/// Runs `plan` to completion under `workers` morsel workers on
/// `contexts` simulated contexts; returns `(rows, virtual makespan)`.
///
/// # Panics
///
/// Panics if the plan fails to wire or faults mid-run.
pub fn run_virtual(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    workers: usize,
    contexts: usize,
) -> (Vec<Vec<Value>>, u64) {
    let cfg = WiringConfig {
        parallel: ParallelConfig {
            workers,
            morsel_pages: 1,
        },
        ..WiringConfig::default()
    };
    let mut sim = Simulator::new(contexts);
    let (rx, _ops, res) =
        wiring::instantiate(&mut sim, catalog, plan, "par-bench", &cfg).expect("plan wires");
    let rows = wiring::run_and_collect(&mut sim, rx, OpCost::default(), &res.fault)
        .expect("parallel bench plan must complete");
    (rows, sim.now())
}

/// Measures one virtual-time pair: serial wiring vs `workers` morsel
/// workers, both on `workers` contexts (same machine, different
/// wiring). Asserts the two runs return identical rows.
pub fn virtual_pair(
    catalog: &Catalog,
    name: &'static str,
    plan: &PhysicalPlan,
    workers: usize,
    note: &'static str,
) -> ParPair {
    let contexts = workers.max(2);
    let (serial_rows, serial_t) = run_virtual(catalog, plan, 1, contexts);
    let (par_rows, par_t) = run_virtual(catalog, plan, workers, contexts);
    assert!(
        rows_approx_eq(&serial_rows, &par_rows),
        "{name}: parallel wiring changed the result rows"
    );
    ParPair {
        name,
        rows: catalog
            .expect("lineitem")
            .pages()
            .iter()
            .map(|p| p.rows())
            .sum(),
        workers,
        serial: serial_t as f64,
        parallel: par_t as f64,
        substrate: "sim-vtime",
        note,
    }
}

/// Measures the real-thread hash-join pair: `orders ⋈ lineitem` through
/// the morsel executor at 1 vs `workers` worker threads, wall clock.
/// On a single-core host this is expected to hover near 1× — that is
/// the point of reporting it alongside the virtual-time pairs.
pub fn join_wall_clock_pair(catalog: &Catalog, workers: usize, samples: usize) -> ParPair {
    let plan = crate::spill_kernels::join_plan();
    let serial_cfg = ParallelConfig::with_workers(1);
    let par_cfg = ParallelConfig::with_workers(workers);
    let serial_rows = parallel::execute_plan(catalog, &plan, &serial_cfg).expect("join runs");
    let par_rows = parallel::execute_plan(catalog, &plan, &par_cfg).expect("join runs");
    assert_eq!(
        cordoba_exec::reference::canonicalize(serial_rows),
        cordoba_exec::reference::canonicalize(par_rows),
        "parallel join changed the result multiset"
    );
    let time_ns = |cfg: &ParallelConfig| {
        let mut best = f64::INFINITY;
        for _ in 0..samples.max(1) {
            let t = Instant::now();
            black_box(parallel::execute_plan(catalog, &plan, cfg).expect("join runs"));
            best = best.min(t.elapsed().as_secs_f64() * 1e9);
        }
        best
    };
    let rows = ["lineitem", "orders"]
        .iter()
        .map(|t| {
            catalog
                .expect(t)
                .pages()
                .iter()
                .map(|p| p.rows())
                .sum::<usize>()
        })
        .sum();
    ParPair {
        name: "par_hash_join",
        rows,
        workers,
        serial: time_ns(&serial_cfg),
        parallel: time_ns(&par_cfg),
        substrate: "wall-clock",
        note: "partitioned build + parallel probe on real threads; ~1x expected on 1-core hosts",
    }
}

/// The full parallel section: virtual-time pipeline and aggregate
/// pairs plus the wall-clock join pair, all at `workers` workers.
pub fn all_pairs(catalog: &Catalog, workers: usize, join_samples: usize) -> Vec<ParPair> {
    vec![
        virtual_pair(
            catalog,
            "par_scan_filter",
            &pipeline_plan(),
            workers,
            "morsel-parallel scan+filter+project vs serial wiring, virtual makespan",
        ),
        virtual_pair(
            catalog,
            "par_aggregate",
            &aggregate_plan(),
            workers,
            "per-worker partial aggregates merged in worker order, virtual makespan",
        ),
        join_wall_clock_pair(catalog, workers, join_samples),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill_kernels::catalog;

    #[test]
    fn virtual_pairs_show_parallel_contraction() {
        let cat = catalog(0.002);
        for (name, plan) in [
            ("par_scan_filter", pipeline_plan()),
            ("par_aggregate", aggregate_plan()),
        ] {
            let pair = virtual_pair(&cat, name, &plan, 4, "");
            assert!(
                pair.speedup() >= 2.0,
                "{name}: expected >= 2x virtual contraction at 4 workers, got {:.2}x \
                 (serial {} parallel {})",
                pair.speedup(),
                pair.serial,
                pair.parallel
            );
        }
    }

    #[test]
    fn join_pair_preserves_results() {
        let cat = catalog(0.002);
        let pair = join_wall_clock_pair(&cat, 4, 1);
        assert!(pair.serial > 0.0 && pair.parallel > 0.0);
        assert_eq!(pair.substrate, "wall-clock");
    }
}
