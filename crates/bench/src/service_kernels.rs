//! Service-loop tail-latency scenarios for `bench_service`.
//!
//! Everything here runs the release engine inside the deterministic
//! simulator with fixed seeds and `workers = 1` pinned, so every number
//! — counts, makespans, and the p50/p99/p999 response-time quantiles —
//! is bit-reproducible across hosts and CI runners, and the `--check`
//! gate can compare against committed values directly.
//!
//! Two suites, following the WIND harness split:
//!
//! * **Suite A** (deterministic structure): coincident fan-out bursts
//!   and a scalability point — fixed arrival instants, the sharing
//!   fan-out/fan-in path under test.
//! * **Suite B** (stochastic arrivals, fixed seeds): Poisson baseline,
//!   bursty on/off, a chaos campaign with injected faults, and a
//!   saturation ramp against a small admission queue with a time cap —
//!   the open-system regimes where rejections and in-flight strands
//!   must stay accounted.

use cordoba_engine::{
    run_service, ArrivalSchedule, EngineConfig, ParallelConfig, Policy, ServiceConfig,
    ServiceReport,
};
use cordoba_sim::{LatencySummary, VTime};
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::Catalog;
use cordoba_workload::arrivals::{bursty, chaos, poisson_mix, ramp};
use cordoba_workload::{family_specs, CostProfile, FamilyConfig};

/// The fixed benchmark catalog (same scale/seed as the subsume suite).
pub fn catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.002,
        seed: 11,
        ..TpchConfig::default()
    })
}

/// Engine configuration for service scenarios: explicit contexts and
/// policy, morsel workers pinned to 1 so `CORDOBA_WORKERS` in the
/// environment cannot perturb the committed numbers.
fn engine_cfg(contexts: usize, policy: Policy) -> EngineConfig {
    EngineConfig {
        contexts,
        policy,
        parallel: ParallelConfig::with_workers(1),
        ..EngineConfig::default()
    }
}

/// The seeded family workload: distinct but nested Q6/Q1-style
/// windows, so the sharing path does real subsumption work.
fn family_pool(seed: u64, families: usize, per_family: usize) -> Vec<cordoba_engine::QuerySpec> {
    family_specs(
        &CostProfile::paper(),
        &FamilyConfig {
            seed,
            families,
            per_family,
        },
    )
}

/// One scenario's committed record.
#[derive(Debug, Clone)]
pub struct ServicePoint {
    /// Scenario name (stable; the `--check` join key).
    pub name: &'static str,
    /// `"A"` (deterministic structure) or `"B"` (stochastic, seeded).
    pub suite: &'static str,
    /// Simulated contexts.
    pub contexts: usize,
    /// Admission-queue capacity.
    pub capacity: usize,
    /// Queries offered / completed / failed / rejected / in flight.
    pub offered: usize,
    /// Completed queries.
    pub completed: usize,
    /// Failed queries (runtime faults and injected chaos).
    pub failed: usize,
    /// Refused at admission.
    pub rejected: usize,
    /// Unfinished at the time cap.
    pub in_flight: usize,
    /// Virtual end time.
    pub makespan: VTime,
    /// Completions per unit virtual time.
    pub throughput: f64,
    /// Machine utilization over the run.
    pub utilization: f64,
    /// Mean dispatched group size.
    pub mean_group: f64,
    /// Response-time distribution of the completed queries.
    pub latency: LatencySummary,
    /// One-line description for the JSON record.
    pub note: &'static str,
}

fn point(
    name: &'static str,
    suite: &'static str,
    cfg: &ServiceConfig,
    report: &ServiceReport,
    note: &'static str,
) -> ServicePoint {
    let mean_group = if report.group_sizes.is_empty() {
        0.0
    } else {
        report.group_sizes.iter().sum::<usize>() as f64 / report.group_sizes.len() as f64
    };
    let latency = report
        .latency()
        .summary()
        .unwrap_or_else(|| panic!("{name}: every scenario must complete something"));
    ServicePoint {
        name,
        suite,
        contexts: cfg.engine.contexts,
        capacity: cfg.admission_capacity,
        offered: report.offered,
        completed: report.completed,
        failed: report.failures.len(),
        rejected: report.rejected,
        in_flight: report.in_flight,
        makespan: report.makespan,
        throughput: report.throughput(),
        utilization: report.stats.utilization(),
        mean_group,
        latency,
        note,
    }
}

/// Suite A: two coincident bursts of the nested family workload — every
/// member of a burst co-resides in the formation window, so the
/// dispatcher must fan a wide fragment out to all of them and fan their
/// residual results back in. Asserts that sharing actually happened.
pub fn fanout_share_burst(cat: &Catalog) -> ServicePoint {
    let pool = family_pool(11, 2, 4);
    let mut schedule: ArrivalSchedule = Vec::new();
    for (b, burst_at) in [1_000u64, 4_000_000].into_iter().enumerate() {
        for (i, spec) in pool.iter().enumerate() {
            schedule.push((burst_at + (b * pool.len() + i) as u64, spec.clone()));
        }
    }
    let cfg = ServiceConfig {
        engine: engine_cfg(2, Policy::AlwaysShare),
        admission_capacity: 64,
        time_cap: None,
    };
    let report = run_service(cat, schedule, &cfg);
    assert_eq!(report.completed, report.offered, "{report:?}");
    let p = point(
        "fanout_share_burst",
        "A",
        &cfg,
        &report,
        "two coincident 8-query family bursts on 2 contexts: wide fragment fan-out, residual fan-in",
    );
    assert!(
        p.mean_group > 1.0,
        "coincident bursts must form groups: {p:?}"
    );
    p
}

/// Suite A: the same coincident family burst on 8 contexts — the
/// scalability point, where sharing trades redundant work against lost
/// parallelism.
pub fn fanout_scale_n8(cat: &Catalog) -> ServicePoint {
    let pool = family_pool(13, 4, 4);
    let schedule: ArrivalSchedule = pool
        .iter()
        .enumerate()
        .map(|(i, spec)| (1_000 + i as u64, spec.clone()))
        .collect();
    let cfg = ServiceConfig {
        engine: engine_cfg(8, Policy::AlwaysShare),
        admission_capacity: 64,
        time_cap: None,
    };
    let report = run_service(cat, schedule, &cfg);
    assert_eq!(report.completed, report.offered, "{report:?}");
    point(
        "fanout_scale_n8",
        "A",
        &cfg,
        &report,
        "one coincident 16-query family burst on 8 contexts: sharing vs parallelism at scale",
    )
}

/// Suite B: Poisson arrivals of the family mix at moderate load —
/// the tail-latency baseline every other stochastic scenario is read
/// against.
pub fn poisson_baseline(cat: &Catalog) -> ServicePoint {
    let pool = family_pool(17, 2, 4);
    let schedule = poisson_mix(&pool, 48, 250_000, 23);
    let cfg = ServiceConfig {
        engine: engine_cfg(2, Policy::AlwaysShare),
        admission_capacity: 32,
        time_cap: None,
    };
    let report = run_service(cat, schedule, &cfg);
    assert_eq!(report.completed, report.offered, "{report:?}");
    point(
        "poisson_baseline",
        "B",
        &cfg,
        &report,
        "48 Poisson arrivals of the family mix at moderate load on 2 contexts",
    )
}

/// Suite B: an on/off source — tight 6-query bursts separated by long
/// idle gaps. Bursts queue behind each other, so the tail (p99/p999)
/// stretches far beyond the Poisson baseline's.
pub fn burst_onoff(cat: &Catalog) -> ServicePoint {
    let pool = family_pool(19, 2, 4);
    let schedule = bursty(&pool, 8, 6, 500, 1_500_000, 29);
    let cfg = ServiceConfig {
        engine: engine_cfg(2, Policy::AlwaysShare),
        admission_capacity: 32,
        time_cap: None,
    };
    let report = run_service(cat, schedule, &cfg);
    assert_eq!(report.completed, report.offered, "{report:?}");
    point(
        "burst_onoff",
        "B",
        &cfg,
        &report,
        "8 bursts x 6 queries, back-to-back within a burst, long idle gaps between",
    )
}

/// Suite B: the Poisson baseline under a chaos campaign — a quarter of
/// the arrivals carry injected faults and must fail without disturbing
/// their group peers. Asserts the failure path is actually exercised.
pub fn chaos_poisson(cat: &Catalog) -> ServicePoint {
    let pool = family_pool(17, 2, 4);
    let schedule = chaos(poisson_mix(&pool, 48, 250_000, 23), 0.25, 31);
    let cfg = ServiceConfig {
        engine: engine_cfg(2, Policy::AlwaysShare),
        admission_capacity: 32,
        time_cap: None,
    };
    let report = run_service(cat, schedule, &cfg);
    let p = point(
        "chaos_poisson",
        "B",
        &cfg,
        &report,
        "the Poisson baseline with ~25% injected faults: failures accounted, peers unaffected",
    );
    assert!(p.failed > 0, "chaos campaign must inject failures: {p:?}");
    assert_eq!(p.completed + p.failed, p.offered, "{p:?}");
    p
}

/// Suite B: a saturation ramp against a small admission queue, cut by a
/// time cap — offered load grows past capacity, so late arrivals are
/// rejected (backpressure) and the cap strands queries in flight.
/// Asserts all four dispositions appear.
pub fn saturation_ramp(cat: &Catalog) -> ServicePoint {
    let pool = family_pool(17, 2, 4);
    let schedule = ramp(&pool, 64, 500_000, 500, 37);
    let cap = schedule[schedule.len() - 1].0;
    let cfg = ServiceConfig {
        engine: engine_cfg(2, Policy::AlwaysShare),
        admission_capacity: 4,
        time_cap: Some(cap),
    };
    let report = run_service(cat, schedule, &cfg);
    let p = point(
        "saturation_ramp",
        "B",
        &cfg,
        &report,
        "64-query load ramp into a capacity-4 admission queue, time-capped at the last arrival",
    );
    assert!(p.rejected > 0, "saturation must shed load: {p:?}");
    assert!(p.in_flight > 0, "the cap must strand queries: {p:?}");
    assert_eq!(
        p.offered,
        p.completed + p.failed + p.rejected + p.in_flight,
        "{p:?}"
    );
    p
}

/// Runs every scenario (in declared order) against the shared catalog.
pub fn run_all(cat: &Catalog, want: impl Fn(&str) -> bool) -> Vec<ServicePoint> {
    type Scenario = fn(&Catalog) -> ServicePoint;
    let scenarios: [(&str, Scenario); 6] = [
        ("fanout_share_burst", fanout_share_burst),
        ("fanout_scale_n8", fanout_scale_n8),
        ("poisson_baseline", poisson_baseline),
        ("burst_onoff", burst_onoff),
        ("chaos_poisson", chaos_poisson),
        ("saturation_ramp", saturation_ramp),
    ];
    scenarios
        .iter()
        .filter(|(name, _)| want(name))
        .map(|(_, f)| f(cat))
        .collect()
}
