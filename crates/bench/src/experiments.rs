//! Measurement routines for every experiment in the paper.

use cordoba_core::contention::estimate_k;
use cordoba_core::sharing::{SharingEvaluator, WorkerScaling};
use cordoba_engine::profiling::profile_query;
use cordoba_engine::{
    measure_throughput, run_once, thread_exec, EngineConfig, ParallelConfig, Policy,
    QueryModelInfo, QuerySpec,
};
use cordoba_sim::VTime;
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::Catalog;
use cordoba_workload::CostProfile;
use std::collections::HashMap;

/// Experiment-wide configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// TPC-H scale factor for the generated database.
    pub scale_factor: f64,
    /// Data generator seed.
    pub seed: u64,
    /// Cost calibration.
    pub costs: CostProfile,
    /// Minimum completions measured per throughput estimate (scaled up
    /// with the client count).
    pub measure_floor: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale_factor: 0.004,
            seed: 0xC0DB_BA5E,
            costs: CostProfile::paper(),
            measure_floor: 24,
        }
    }
}

impl ExpConfig {
    /// A faster configuration for smoke tests / CI.
    pub fn quick() -> Self {
        Self {
            scale_factor: 0.002,
            measure_floor: 12,
            ..Self::default()
        }
    }

    /// Generates the experiment database.
    pub fn catalog(&self) -> Catalog {
        generate(&TpchConfig {
            scale_factor: self.scale_factor,
            seed: self.seed,
            ..TpchConfig::default()
        })
    }
}

/// Approximate total virtual work of one query instance (sum of all
/// operator active times in a solo run); used to size time caps.
pub fn query_work(catalog: &Catalog, spec: &QuerySpec) -> VTime {
    let cfg = EngineConfig {
        contexts: 1,
        ..EngineConfig::default()
    };
    let out = run_once(catalog, std::slice::from_ref(spec), &cfg);
    out.task_stats.iter().map(|(_, s)| s.active).sum()
}

fn engine_cfg(contexts: usize, policy: Policy) -> EngineConfig {
    EngineConfig {
        contexts,
        policy,
        ..EngineConfig::default()
    }
}

fn engine_cfg_workers(contexts: usize, policy: Policy, workers: usize) -> EngineConfig {
    EngineConfig {
        contexts,
        policy,
        parallel: ParallelConfig::with_workers(workers),
        ..EngineConfig::default()
    }
}

/// One point of a sharing-speedup sweep (Figures 1/2/5 measured series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Number of concurrent clients (`m`).
    pub clients: usize,
    /// Hardware contexts (`n`).
    pub contexts: usize,
    /// Shared-mode throughput (queries per unit virtual time).
    pub shared: f64,
    /// Unshared-mode throughput.
    pub unshared: f64,
    /// Measured speedup `Z = shared / unshared`.
    pub z: f64,
}

/// Measures the speedup of always-share over never-share for `m`
/// identical copies of `spec` on `contexts` contexts.
pub fn sharing_speedup(
    catalog: &Catalog,
    spec: &QuerySpec,
    clients: usize,
    contexts: usize,
    work_hint: VTime,
    measure_floor: usize,
) -> SpeedupPoint {
    let specs = vec![spec.clone(); clients];
    // ~6 closed-loop "rounds" per estimate: shared groups complete in
    // bursts of m, so the window must span several bursts.
    let target = measure_floor.max(6 * clients);
    // Generous cap: enough for ~8x the target at the slowest plausible
    // rate (all work serialized on one context).
    let cap = work_hint
        .saturating_mul(clients as u64)
        .saturating_mul(16)
        .max(10_000_000);
    let shared = measure_throughput(
        catalog,
        &specs,
        &engine_cfg(contexts, Policy::AlwaysShare),
        target,
        cap,
    );
    let unshared = measure_throughput(
        catalog,
        &specs,
        &engine_cfg(contexts, Policy::NeverShare),
        target,
        cap,
    );
    SpeedupPoint {
        clients,
        contexts,
        shared: shared.per_time,
        unshared: unshared.per_time,
        z: if unshared.per_time > 0.0 {
            shared.per_time / unshared.per_time
        } else {
            f64::NAN
        },
    }
}

/// Sweeps clients × contexts for one query (a full panel of Figure 1/2).
pub fn speedup_sweep(
    catalog: &Catalog,
    spec: &QuerySpec,
    clients: &[usize],
    contexts: &[usize],
    measure_floor: usize,
) -> Vec<SpeedupPoint> {
    let work = query_work(catalog, spec);
    let mut out = Vec::new();
    for &n in contexts {
        for &m in clients {
            out.push(sharing_speedup(catalog, spec, m, n, work, measure_floor));
        }
    }
    out
}

/// Model-predicted speedup for `m` sharers of the profiled query on `n`
/// contexts (Figure 5 model series; Figure 4 uses the synthetic plans
/// directly).
pub fn model_speedup(info: &QueryModelInfo, clients: usize, contexts: usize) -> f64 {
    SharingEvaluator::homogeneous(&info.plan, info.pivot, clients)
        .expect("profiled plan is valid")
        .speedup(contexts as f64)
}

/// Model-predicted speedup with every query running `scaling.workers`
/// morsel workers (the (m × k) grid's model series).
pub fn model_speedup_with_workers(
    info: &QueryModelInfo,
    clients: usize,
    contexts: usize,
    scaling: WorkerScaling,
) -> f64 {
    SharingEvaluator::homogeneous(&info.plan, info.pivot, clients)
        .expect("profiled plan is valid")
        .speedup_with_workers(contexts as f64, scaling)
}

/// Measures the always-share vs never-share speedup with every query
/// running `workers` morsel workers — one point of the (m × k) grid.
pub fn sharing_speedup_with_workers(
    catalog: &Catalog,
    spec: &QuerySpec,
    clients: usize,
    contexts: usize,
    workers: usize,
    work_hint: VTime,
    measure_floor: usize,
) -> SpeedupPoint {
    let specs = vec![spec.clone(); clients];
    let target = measure_floor.max(6 * clients);
    let cap = work_hint
        .saturating_mul(clients as u64)
        .saturating_mul(16)
        .max(10_000_000);
    let shared = measure_throughput(
        catalog,
        &specs,
        &engine_cfg_workers(contexts, Policy::AlwaysShare, workers),
        target,
        cap,
    );
    let unshared = measure_throughput(
        catalog,
        &specs,
        &engine_cfg_workers(contexts, Policy::NeverShare, workers),
        target,
        cap,
    );
    SpeedupPoint {
        clients,
        contexts,
        shared: shared.per_time,
        unshared: unshared.per_time,
        z: if unshared.per_time > 0.0 {
            shared.per_time / unshared.per_time
        } else {
            f64::NAN
        },
    }
}

/// Fits the intra-query scaling exponent `κ` of the *simulated* engine:
/// solo-query virtual throughput (1 / makespan) at each worker count,
/// log-log least-squares — the same aggregate-bandwidth form as the
/// paper's Section 4.1.4 contention fit, applied to worker counts.
pub fn fit_sim_kappa(catalog: &Catalog, spec: &QuerySpec, worker_counts: &[usize]) -> f64 {
    let samples: Vec<(u32, f64)> = worker_counts
        .iter()
        .map(|&k| {
            let cfg = engine_cfg_workers(k.max(1), Policy::NeverShare, k);
            let out = run_once(catalog, std::slice::from_ref(spec), &cfg);
            (k.max(1) as u32, 1.0 / out.makespan.max(1) as f64)
        })
        .collect();
    estimate_k(&samples).unwrap_or(f64::MIN_POSITIVE)
}

/// Fits `κ` of the *real-thread* morsel executor on this host:
/// wall-clock throughput from
/// [`cordoba_engine::thread_exec::worker_scaling_samples`]. On a
/// single-core runner the samples are flat and `κ` fits ≈ 0 — the
/// honest answer that intra-query parallelism buys this host nothing.
pub fn fit_thread_kappa(catalog: &Catalog, spec: &QuerySpec, worker_counts: &[u32]) -> f64 {
    let samples = thread_exec::worker_scaling_samples(catalog, spec, 3, worker_counts)
        .expect("threaded scaling run");
    estimate_k(&samples).unwrap_or(f64::MIN_POSITIVE)
}

/// Profiles every query in `specs` (paper Section 3.1), returning the
/// per-name model map the model-guided policy needs.
pub fn profile_all(catalog: &Catalog, specs: &[QuerySpec]) -> HashMap<String, QueryModelInfo> {
    let cfg = EngineConfig::default();
    specs
        .iter()
        .map(|spec| {
            let (info, _) = profile_query(catalog, spec, &cfg)
                .unwrap_or_else(|e| panic!("profiling {} failed: {e}", spec.name));
            (spec.name.clone(), info)
        })
        .collect()
}

/// One point of the Figure 6 policy comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyPoint {
    /// Fraction of clients submitting Q4.
    pub q4_fraction: f64,
    /// Never-share throughput.
    pub never: f64,
    /// Always-share throughput.
    pub always: f64,
    /// Model-guided throughput.
    pub model: f64,
}

/// Measures the three policies on a Q1/Q4 mix (paper Section 8.2).
pub fn policy_comparison(
    catalog: &Catalog,
    costs: &CostProfile,
    models: &HashMap<String, QueryModelInfo>,
    clients: usize,
    contexts: usize,
    q4_fraction: f64,
    measure_floor: usize,
) -> PolicyPoint {
    let mix = cordoba_workload::mix::q1_q4_mix(costs, clients, q4_fraction);
    let work = mix
        .iter()
        .map(|s| query_work(catalog, s))
        .max()
        .unwrap_or(1_000_000);
    let target = measure_floor.max(6 * clients);
    let cap = work
        .saturating_mul(clients as u64)
        .saturating_mul(16)
        .max(10_000_000);
    let run = |policy: Policy| {
        measure_throughput(catalog, &mix, &engine_cfg(contexts, policy), target, cap).per_time
    };
    PolicyPoint {
        q4_fraction,
        never: run(Policy::NeverShare),
        always: run(Policy::AlwaysShare),
        model: run(Policy::ModelGuided {
            models: models.clone(),
            hysteresis: 0.0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_workload::{q4, q6};

    #[test]
    fn q6_sharing_helps_on_one_context_hurts_on_many() {
        // The headline result (Figure 1) on the real engine.
        let cfg = ExpConfig::quick();
        let catalog = cfg.catalog();
        let spec = q6(&cfg.costs);
        let work = query_work(&catalog, &spec);
        let uni = sharing_speedup(&catalog, &spec, 8, 1, work, cfg.measure_floor);
        assert!(uni.z > 1.2, "n=1 expected sharing win, got {uni:?}");
        let cmp = sharing_speedup(&catalog, &spec, 8, 32, work, cfg.measure_floor);
        assert!(cmp.z < 0.7, "n=32 expected sharing loss, got {cmp:?}");
    }

    #[test]
    fn q4_sharing_always_helps() {
        let cfg = ExpConfig::quick();
        let catalog = cfg.catalog();
        let spec = q4(&cfg.costs);
        let work = query_work(&catalog, &spec);
        for contexts in [1usize, 8] {
            let p = sharing_speedup(&catalog, &spec, 8, contexts, work, cfg.measure_floor);
            assert!(p.z > 1.0, "contexts={contexts}: {p:?}");
        }
    }
}
