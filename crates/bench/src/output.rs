//! Result emission: CSV files under `results/` plus compact ASCII
//! charts on stdout, so each figure binary both archives and displays
//! the series the paper plots.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Directory results are written to (workspace-relative).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CORDOBA_RESULTS").unwrap_or_else(|_| "results".into());
    PathBuf::from(dir)
}

/// Writes a CSV with the given header and rows.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path
}

/// Renders one or more named series sharing an x-axis as an ASCII chart.
///
/// `series` maps a label to `(x, y)` points; x values are assumed sorted
/// and shared across series (missing points are skipped).
pub fn ascii_chart(title: &str, ylabel: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    const WIDTH: usize = 64;
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let ymax = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(_, y)| y))
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    for (label, pts) in series {
        out.push_str(&format!("  {label}\n"));
        for &(x, y) in pts {
            let bars = ((y / ymax) * WIDTH as f64).round().max(0.0) as usize;
            out.push_str(&format!(
                "    {x:>8.2} | {}{} {y:.3} {ylabel}\n",
                "#".repeat(bars),
                " ".repeat(WIDTH.saturating_sub(bars)),
            ));
        }
    }
    out
}

/// Formats a float column.
pub fn f(v: f64) -> String {
    format!("{v:.6}")
}

/// Prints where a CSV landed.
pub fn announce(path: &Path) {
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        std::env::set_var(
            "CORDOBA_RESULTS",
            std::env::temp_dir().join("cordoba-test-results"),
        );
        let path = write_csv(
            "test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::env::remove_var("CORDOBA_RESULTS");
    }

    #[test]
    fn chart_renders_all_series() {
        let s = ascii_chart(
            "t",
            "z",
            &[
                ("one".into(), vec![(1.0, 0.5), (2.0, 1.0)]),
                ("two".into(), vec![(1.0, 0.25)]),
            ],
        );
        assert!(s.contains("## t"));
        assert!(s.contains("one"));
        assert!(s.contains("two"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn zero_series_does_not_panic() {
        let s = ascii_chart("empty", "y", &[("z".into(), vec![(0.0, 0.0)])]);
        assert!(s.contains("empty"));
    }
}
