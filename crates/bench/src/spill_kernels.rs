//! Out-of-core operator benchmarks: the same TPC-H sort and hash join
//! run twice through the simulator — once with an unbounded memory
//! broker (the historic all-in-memory path) and once under a budget a
//! quarter the size of the input, forcing the external sort and the
//! spilling hybrid hash join out of core.
//!
//! Unlike the [`vec_kernels`](crate::vec_kernels) pairs, the point is
//! not a speedup (spilling costs real I/O; ratios below 1 are expected)
//! but the *memory trajectory*: the run records the broker's high-water
//! mark so `BENCH_ops.json` can assert the past-memory scenario — input
//! ≥ 4× budget, peak tracked memory ≤ 1.25× budget, output identical to
//! the in-memory run.

use cordoba_exec::wiring::{self, WiringConfig};
use cordoba_exec::{JoinKind, MemoryConfig, OpCost, PhysicalPlan};
use cordoba_sim::Simulator;
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::{Catalog, Value};

/// One simulated query execution: its rows and the broker's peak.
pub struct SpillRun {
    /// Collected result rows.
    pub rows: Vec<Vec<Value>>,
    /// High-water mark of tracked operator memory, in bytes.
    pub peak_bytes: usize,
}

/// Deterministic TPC-H catalog for the spill scenarios.
pub fn catalog(scale_factor: f64) -> Catalog {
    generate(&TpchConfig {
        scale_factor,
        seed: 1,
        ..TpchConfig::default()
    })
}

/// Total stored bytes of `table` — the "input size" the past-memory
/// scenario budgets against.
pub fn table_bytes(catalog: &Catalog, table: &str) -> usize {
    catalog
        .expect(table)
        .pages()
        .iter()
        .map(|p| p.byte_len())
        .sum()
}

fn scan(table: &str) -> Box<PhysicalPlan> {
    Box::new(PhysicalPlan::Scan {
        table: table.into(),
        cost: OpCost::default(),
    })
}

/// Full sort of `lineitem` by `l_shipdate` — the external-sort
/// scenario's plan (packed 4-byte keys, every input page buffered or
/// spilled).
pub fn sort_plan() -> PhysicalPlan {
    PhysicalPlan::Sort {
        input: scan("lineitem"),
        keys: vec![7],
        cost: OpCost::default(),
    }
}

/// `orders ⋈ lineitem` on orderkey with `orders` as the build side —
/// the hybrid-hash-join scenario's plan (the whole build arena must fit
/// or spill).
pub fn join_plan() -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        build: scan("orders"),
        probe: scan("lineitem"),
        build_key: 0,
        probe_key: 0,
        kind: JoinKind::Inner,
        build_cost: OpCost::default(),
        probe_cost: OpCost::default(),
    }
}

/// Runs `plan` to completion under `budget` (`None` = unbounded) and
/// returns the rows plus the broker's peak.
///
/// # Panics
///
/// Panics if the plan fails to wire or the query faults — the spill
/// scenarios must complete by spilling, never by dying.
pub fn run_plan(catalog: &Catalog, plan: &PhysicalPlan, budget: Option<usize>) -> SpillRun {
    let cfg = WiringConfig {
        memory: MemoryConfig {
            query_budget: budget,
            ..MemoryConfig::default()
        },
        ..WiringConfig::default()
    };
    let mut sim = Simulator::new(2);
    let (rx, _ops, res) =
        wiring::instantiate(&mut sim, catalog, plan, "spill-bench", &cfg).expect("plan wires");
    let rows = wiring::run_and_collect(&mut sim, rx, OpCost::default(), &res.fault)
        .expect("spill scenario must complete by spilling, not fail");
    SpillRun {
        rows,
        peak_bytes: res.broker.peak(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::reference;
    use cordoba_storage::PAGE_SIZE;

    /// The past-memory acceptance scenario at a small scale: input ≥ 4×
    /// budget, peak ≤ 1.25× budget, rows equal to the in-memory run.
    #[test]
    fn past_memory_scenarios_hold_at_small_scale() {
        let cat = catalog(0.002);
        for (name, plan, input) in [
            ("sort", sort_plan(), table_bytes(&cat, "lineitem")),
            ("join", join_plan(), table_bytes(&cat, "orders")),
        ] {
            let budget = (input / 4).max(8 * PAGE_SIZE);
            assert!(
                input >= 4 * budget,
                "{name}: input {input} vs budget {budget}"
            );
            let spilled = run_plan(&cat, &plan, Some(budget));
            let in_memory = run_plan(&cat, &plan, None);
            assert!(
                spilled.peak_bytes <= budget + budget / 4,
                "{name}: peak {} exceeds 1.25 x budget {budget}",
                spilled.peak_bytes
            );
            assert!(
                in_memory.peak_bytes >= 4 * budget,
                "{name}: the in-memory path must actually need past-budget memory"
            );
            if name == "sort" {
                assert_eq!(spilled.rows, in_memory.rows, "sort must be order-identical");
            } else {
                assert_eq!(
                    reference::canonicalize(spilled.rows),
                    reference::canonicalize(in_memory.rows),
                    "join must be multiset-identical"
                );
            }
        }
    }
}
