//! Paired baseline/vectorized kernels for the operator hot paths.
//!
//! Each pair runs the *same* logical computation two ways over the same
//! TPC-H pages: the baseline replicates the pre-vectorization operator
//! inner loop (recursive `eval` per tuple, SipHash map with one boxed
//! row per build tuple, per-tuple group-key materialization), while the
//! vectorized side uses the compiled-program / selection-vector / arena
//! machinery the operators now run on. The criterion bench
//! (`benches/vectorized.rs`) and the `bench_ops` binary (which writes
//! `BENCH_ops.json` at the repo root) both time exactly these
//! functions, so the recorded speedups are the operator inner-loop
//! speedups, free of simulator scheduling noise.

use cordoba_core::FxHashMap;
use cordoba_exec::expr::{CmpOp, Predicate, ScalarExpr};
use cordoba_exec::ops::{key_of, BuildTable, KeyVal};
use cordoba_exec::vexpr::{CompiledExpr, CompiledPredicate, ExprScratch};
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::{Date, Page, PageBuilder, Schema};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Pages + schemas the kernels run over.
pub struct BenchData {
    /// `lineitem` pages (filter / expr / aggregate / probe side).
    pub lineitem: Vec<Arc<Page>>,
    /// `orders` pages (join build side).
    pub orders: Vec<Arc<Page>>,
    /// `lineitem` schema.
    pub lineitem_schema: Arc<Schema>,
    /// `orders` schema.
    pub orders_schema: Arc<Schema>,
}

impl BenchData {
    /// Generates deterministic TPC-H data at `scale_factor`.
    pub fn generate(scale_factor: f64) -> Self {
        let catalog = generate(&TpchConfig {
            scale_factor,
            seed: 1,
            ..TpchConfig::default()
        });
        let lineitem = catalog.expect("lineitem");
        let orders = catalog.expect("orders");
        Self {
            lineitem_schema: lineitem.schema().clone(),
            orders_schema: orders.schema().clone(),
            lineitem: lineitem.pages().to_vec(),
            orders: orders.pages().to_vec(),
        }
    }

    /// Total lineitem rows.
    pub fn lineitem_rows(&self) -> usize {
        self.lineitem.iter().map(|p| p.rows()).sum()
    }

    /// Total orders rows.
    pub fn orders_rows(&self) -> usize {
        self.orders.iter().map(|p| p.rows()).sum()
    }
}

/// TPC-H Q6's selection over `lineitem` (date window, discount band,
/// quantity bound) — the canonical scan predicate.
pub fn q6_predicate() -> Predicate {
    Predicate::And(vec![
        Predicate::col_cmp(7, CmpOp::Ge, Date::from_ymd(1994, 1, 1)),
        Predicate::col_cmp(7, CmpOp::Lt, Date::from_ymd(1995, 1, 1)),
        Predicate::col_cmp(3, CmpOp::Ge, 0.05),
        Predicate::col_cmp(3, CmpOp::Le, 0.07),
        Predicate::col_cmp(1, CmpOp::Lt, 24.0),
    ])
}

/// Q6/Q1's revenue expression: `l_extendedprice * (1 - l_discount)`.
pub fn revenue_expr() -> ScalarExpr {
    ScalarExpr::Mul(
        Box::new(ScalarExpr::col(2)),
        Box::new(ScalarExpr::Sub(
            Box::new(ScalarExpr::FloatLit(1.0)),
            Box::new(ScalarExpr::col(3)),
        )),
    )
}

// ---------------------------------------------------------------- filter

/// Baseline filter: recursive `Predicate::eval` per tuple.
pub fn filter_baseline(pages: &[Arc<Page>], pred: &Predicate) -> usize {
    let mut kept = 0;
    for page in pages {
        for t in page.tuples() {
            if pred.eval(&t) {
                kept += 1;
            }
        }
    }
    kept
}

/// Vectorized filter: compiled program to a selection vector per page.
pub fn filter_vectorized(
    pages: &[Arc<Page>],
    pred: &CompiledPredicate,
    scratch: &mut ExprScratch,
    sel: &mut Vec<u32>,
) -> usize {
    let mut kept = 0;
    for page in pages {
        pred.select(page, scratch, sel);
        kept += sel.len();
    }
    kept
}

// ------------------------------------------------------------------ expr

/// Baseline expression evaluation: recursive `ScalarExpr::eval` per
/// tuple, summed so nothing is optimized away.
pub fn expr_baseline(pages: &[Arc<Page>], expr: &ScalarExpr) -> f64 {
    let mut acc = 0.0;
    for page in pages {
        for t in page.tuples() {
            acc += expr.eval(&t).as_f64().expect("numeric");
        }
    }
    acc
}

/// Vectorized expression evaluation: compiled program into a reused
/// `f64` column per page.
pub fn expr_vectorized(
    pages: &[Arc<Page>],
    expr: &CompiledExpr,
    scratch: &mut ExprScratch,
    col: &mut Vec<f64>,
) -> f64 {
    let mut acc = 0.0;
    for page in pages {
        expr.eval_f64_into(page, scratch, col);
        acc += col.iter().sum::<f64>();
    }
    acc
}

// ------------------------------------------------------------------ join

/// Baseline hash-join build: the pre-vectorization layout — SipHash
/// `HashMap`, one boxed row allocation per build tuple.
pub fn join_build_baseline(pages: &[Arc<Page>], key_col: usize) -> HashMap<i64, Vec<Box<[u8]>>> {
    let mut table: HashMap<i64, Vec<Box<[u8]>>> = HashMap::new();
    for page in pages {
        for t in page.tuples() {
            table
                .entry(t.get_int(key_col))
                .or_default()
                .push(t.raw().to_vec().into_boxed_slice());
        }
    }
    table
}

/// Vectorized hash-join build: contiguous arena + chained offsets +
/// integer hashing; zero per-row allocations.
pub fn join_build_vectorized(pages: &[Arc<Page>], key_col: usize, row_width: usize) -> BuildTable {
    let mut table = BuildTable::new(row_width);
    for page in pages {
        table.insert_page(page, key_col);
    }
    table
}

/// Baseline probe: per-tuple key read + SipHash lookup (match bytes
/// summed so the chain walk is not optimized away).
pub fn join_probe_baseline(
    table: &HashMap<i64, Vec<Box<[u8]>>>,
    pages: &[Arc<Page>],
    key_col: usize,
) -> usize {
    let mut matched = 0;
    for page in pages {
        for t in page.tuples() {
            if let Some(rows) = table.get(&t.get_int(key_col)) {
                matched += rows.len();
            }
        }
    }
    matched
}

/// Vectorized probe: gathered key column + integer-hashed lookup over
/// the arena chains.
pub fn join_probe_vectorized(
    table: &BuildTable,
    pages: &[Arc<Page>],
    key_col: usize,
    keys: &mut Vec<i64>,
) -> usize {
    let mut matched = 0;
    for page in pages {
        page.gather_i64(key_col, keys);
        for &key in keys.iter() {
            matched += table.matches(key).count();
        }
    }
    matched
}

// ------------------------------------------------------------- aggregate

/// Baseline Q1-style aggregation: per-tuple `key_of` materialization
/// into an ordered map plus recursive expression evaluation per tuple.
pub fn aggregate_baseline(pages: &[Arc<Page>], group_by: &[usize], expr: &ScalarExpr) -> usize {
    let mut groups: BTreeMap<Vec<KeyVal>, (i64, f64)> = BTreeMap::new();
    for page in pages {
        for t in page.tuples() {
            let key = key_of(&t, group_by);
            let acc = groups.entry(key).or_insert((0, 0.0));
            acc.0 += 1;
            acc.1 += expr.eval(&t).as_f64().expect("numeric");
        }
    }
    groups.len()
}

/// Vectorized Q1-style aggregation: packed `u64` group keys (the ≤ 8
/// byte fast path), integer-hashed slots, and a pre-evaluated input
/// column — the inner loop `AggregateTask` now runs.
pub fn aggregate_vectorized(
    pages: &[Arc<Page>],
    schema: &Arc<Schema>,
    group_by: &[usize],
    expr: &CompiledExpr,
    scratch: &mut ExprScratch,
    col: &mut Vec<f64>,
) -> usize {
    let fields: Vec<(usize, usize)> = group_by
        .iter()
        .map(|&c| (schema.offset(c), schema.fields()[c].dtype.width()))
        .collect();
    assert!(fields.iter().map(|&(_, w)| w).sum::<usize>() <= 8);
    let mut map: FxHashMap<u64, u32> = FxHashMap::default();
    let mut slots: Vec<(i64, f64)> = Vec::new();
    for page in pages {
        expr.eval_f64_into(page, scratch, col);
        for (r, raw) in page.raw_rows().enumerate() {
            let mut bytes = [0u8; 8];
            let mut at = 0;
            for &(off, w) in &fields {
                bytes[at..at + w].copy_from_slice(&raw[off..off + w]);
                at += w;
            }
            let idx = *map.entry(u64::from_le_bytes(bytes)).or_insert_with(|| {
                slots.push((0, 0.0));
                (slots.len() - 1) as u32
            });
            let acc = &mut slots[idx as usize];
            acc.0 += 1;
            acc.1 += col[r];
        }
    }
    slots.len()
}

/// The fixed aggregate kernel configuration used by both harnesses:
/// Q1's `(l_returnflag, l_linestatus)` grouping over the revenue
/// expression.
pub fn q1_group_by() -> Vec<usize> {
    vec![5, 6]
}

// ---------------------------------------------------------- end-to-end Q6

/// Baseline end-to-end Q6: tuple-at-a-time predicate + revenue sum, the
/// exact loop the filter/aggregate pipeline used to run per tuple.
pub fn q6_baseline(pages: &[Arc<Page>], pred: &Predicate, expr: &ScalarExpr) -> (usize, f64) {
    let (mut n, mut revenue) = (0usize, 0.0);
    for page in pages {
        for t in page.tuples() {
            if pred.eval(&t) {
                n += 1;
                revenue += expr.eval(&t).as_f64().expect("numeric");
            }
        }
    }
    (n, revenue)
}

/// Vectorized end-to-end Q6, shaped like the operator pipeline:
/// selection vector, survivors repacked into dense pages with bulk row
/// copies, compiled revenue program over the *filtered* pages.
pub fn q6_vectorized(
    pages: &[Arc<Page>],
    pred: &CompiledPredicate,
    expr: &CompiledExpr,
    scratch: &mut ExprScratch,
    sel: &mut Vec<u32>,
    col: &mut Vec<f64>,
) -> (usize, f64) {
    let (mut n, mut revenue) = (0usize, 0.0);
    let Some(first) = pages.first() else {
        return (n, revenue);
    };
    let mut builder = PageBuilder::new(first.schema().clone());
    let flush = |builder: &mut PageBuilder, scratch: &mut ExprScratch, col: &mut Vec<f64>| {
        if builder.is_empty() {
            return (0usize, 0.0);
        }
        let page = builder.finish_and_reset();
        expr.eval_f64_into(&page, scratch, col);
        (page.rows(), col.iter().sum::<f64>())
    };
    for page in pages {
        pred.select(page, scratch, sel);
        let mut taken = 0;
        while taken < sel.len() {
            taken += page.copy_rows_into(&sel[taken..], &mut builder);
            if builder.is_full() {
                let (dn, dr) = flush(&mut builder, scratch, col);
                n += dn;
                revenue += dr;
            }
        }
    }
    let (dn, dr) = flush(&mut builder, scratch, col);
    n += dn;
    revenue += dr;
    (n, revenue)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> BenchData {
        BenchData::generate(0.002)
    }

    #[test]
    fn kernel_pairs_agree() {
        let d = data();
        let mut scratch = ExprScratch::default();

        let pred = q6_predicate();
        let compiled = CompiledPredicate::compile(&pred, &d.lineitem_schema);
        let mut sel = Vec::new();
        assert_eq!(
            filter_baseline(&d.lineitem, &pred),
            filter_vectorized(&d.lineitem, &compiled, &mut scratch, &mut sel)
        );

        let expr = revenue_expr();
        let cexpr = CompiledExpr::compile(&expr, &d.lineitem_schema);
        let mut col = Vec::new();
        let base = expr_baseline(&d.lineitem, &expr);
        let vect = expr_vectorized(&d.lineitem, &cexpr, &mut scratch, &mut col);
        assert!((base - vect).abs() <= base.abs() * 1e-12);

        let base_table = join_build_baseline(&d.orders, 0);
        let vec_table = join_build_vectorized(&d.orders, 0, d.orders_schema.row_width());
        assert_eq!(
            base_table.values().map(Vec::len).sum::<usize>(),
            vec_table.rows()
        );
        let mut keys = Vec::new();
        assert_eq!(
            join_probe_baseline(&base_table, &d.lineitem, 0),
            join_probe_vectorized(&vec_table, &d.lineitem, 0, &mut keys)
        );

        assert_eq!(
            aggregate_baseline(&d.lineitem, &q1_group_by(), &expr),
            aggregate_vectorized(
                &d.lineitem,
                &d.lineitem_schema,
                &q1_group_by(),
                &cexpr,
                &mut scratch,
                &mut col
            )
        );

        let (bn, br) = q6_baseline(&d.lineitem, &pred, &expr);
        let (vn, vr) = q6_vectorized(
            &d.lineitem,
            &compiled,
            &cexpr,
            &mut scratch,
            &mut sel,
            &mut col,
        );
        assert_eq!(bn, vn);
        assert!((br - vr).abs() <= br.abs() * 1e-9, "{br} vs {vr}");
    }
}
