//! Paired baseline/vectorized kernels for the operator hot paths.
//!
//! Each pair runs the *same* logical computation two ways over the same
//! TPC-H pages: the baseline replicates the pre-vectorization operator
//! inner loop (recursive `eval` per tuple, SipHash map with one boxed
//! row per build tuple, per-tuple group-key materialization), while the
//! vectorized side uses the compiled-program / selection-vector / arena
//! machinery the operators now run on. The criterion bench
//! (`benches/vectorized.rs`) and the `bench_ops` binary (which writes
//! `BENCH_ops.json` at the repo root) both time exactly these
//! functions, so the recorded speedups are the operator inner-loop
//! speedups, free of simulator scheduling noise.

use cordoba_core::FxHashMap;
use cordoba_exec::expr::{CmpOp, Predicate, ScalarExpr};
use cordoba_exec::ops::{key_of, BuildTable, KeyScratch, KeyVal, PackedKeySpec};
use cordoba_exec::plan::concat_schemas;
use cordoba_exec::vexpr::{CompiledExpr, CompiledPredicate, ExprScratch};
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::{Date, Page, PageBuilder, Schema};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Pages + schemas the kernels run over.
pub struct BenchData {
    /// `lineitem` pages (filter / expr / aggregate / probe side).
    pub lineitem: Vec<Arc<Page>>,
    /// `orders` pages (join build side).
    pub orders: Vec<Arc<Page>>,
    /// `lineitem` schema.
    pub lineitem_schema: Arc<Schema>,
    /// `orders` schema.
    pub orders_schema: Arc<Schema>,
}

impl BenchData {
    /// Generates deterministic TPC-H data at `scale_factor`.
    pub fn generate(scale_factor: f64) -> Self {
        let catalog = generate(&TpchConfig {
            scale_factor,
            seed: 1,
            ..TpchConfig::default()
        });
        let lineitem = catalog.expect("lineitem");
        let orders = catalog.expect("orders");
        Self {
            lineitem_schema: lineitem.schema().clone(),
            orders_schema: orders.schema().clone(),
            lineitem: lineitem.pages().to_vec(),
            orders: orders.pages().to_vec(),
        }
    }

    /// Total lineitem rows.
    pub fn lineitem_rows(&self) -> usize {
        self.lineitem.iter().map(|p| p.rows()).sum()
    }

    /// Total orders rows.
    pub fn orders_rows(&self) -> usize {
        self.orders.iter().map(|p| p.rows()).sum()
    }
}

/// TPC-H Q6's selection over `lineitem` (date window, discount band,
/// quantity bound) — the canonical scan predicate.
pub fn q6_predicate() -> Predicate {
    Predicate::And(vec![
        Predicate::col_cmp(7, CmpOp::Ge, Date::from_ymd(1994, 1, 1)),
        Predicate::col_cmp(7, CmpOp::Lt, Date::from_ymd(1995, 1, 1)),
        Predicate::col_cmp(3, CmpOp::Ge, 0.05),
        Predicate::col_cmp(3, CmpOp::Le, 0.07),
        Predicate::col_cmp(1, CmpOp::Lt, 24.0),
    ])
}

/// Q6/Q1's revenue expression: `l_extendedprice * (1 - l_discount)`.
pub fn revenue_expr() -> ScalarExpr {
    ScalarExpr::Mul(
        Box::new(ScalarExpr::col(2)),
        Box::new(ScalarExpr::Sub(
            Box::new(ScalarExpr::FloatLit(1.0)),
            Box::new(ScalarExpr::col(3)),
        )),
    )
}

// ---------------------------------------------------------------- filter

/// Baseline filter: recursive `Predicate::eval` per tuple.
pub fn filter_baseline(pages: &[Arc<Page>], pred: &Predicate) -> usize {
    let mut kept = 0;
    for page in pages {
        for t in page.tuples() {
            if pred.eval(&t) {
                kept += 1;
            }
        }
    }
    kept
}

/// Vectorized filter: compiled program to a selection vector per page.
pub fn filter_vectorized(
    pages: &[Arc<Page>],
    pred: &CompiledPredicate,
    scratch: &mut ExprScratch,
    sel: &mut Vec<u32>,
) -> usize {
    let mut kept = 0;
    for page in pages {
        pred.select(page, scratch, sel);
        kept += sel.len();
    }
    kept
}

// ------------------------------------------------------------------ expr

/// Baseline expression evaluation: recursive `ScalarExpr::eval` per
/// tuple, summed so nothing is optimized away.
pub fn expr_baseline(pages: &[Arc<Page>], expr: &ScalarExpr) -> f64 {
    let mut acc = 0.0;
    for page in pages {
        for t in page.tuples() {
            acc += expr.eval(&t).as_f64().expect("numeric");
        }
    }
    acc
}

/// Vectorized expression evaluation: compiled program into a reused
/// `f64` column per page.
pub fn expr_vectorized(
    pages: &[Arc<Page>],
    expr: &CompiledExpr,
    scratch: &mut ExprScratch,
    col: &mut Vec<f64>,
) -> f64 {
    let mut acc = 0.0;
    for page in pages {
        expr.eval_f64_into(page, scratch, col);
        acc += col.iter().sum::<f64>();
    }
    acc
}

// ------------------------------------------------------------------ join

/// Baseline hash-join build: the pre-vectorization layout — SipHash
/// `HashMap`, one boxed row allocation per build tuple.
pub fn join_build_baseline(pages: &[Arc<Page>], key_col: usize) -> HashMap<i64, Vec<Box<[u8]>>> {
    let mut table: HashMap<i64, Vec<Box<[u8]>>> = HashMap::new();
    for page in pages {
        for t in page.tuples() {
            table
                .entry(t.get_int(key_col))
                .or_default()
                .push(t.raw().to_vec().into_boxed_slice());
        }
    }
    table
}

/// Vectorized hash-join build: contiguous arena + chained offsets +
/// integer hashing; zero per-row allocations.
pub fn join_build_vectorized(pages: &[Arc<Page>], key_col: usize, row_width: usize) -> BuildTable {
    let mut table = BuildTable::new(row_width);
    for page in pages {
        table.insert_page(page, key_col);
    }
    table
}

/// Baseline probe: per-tuple key read + SipHash lookup (match bytes
/// summed so the chain walk is not optimized away).
pub fn join_probe_baseline(
    table: &HashMap<i64, Vec<Box<[u8]>>>,
    pages: &[Arc<Page>],
    key_col: usize,
) -> usize {
    let mut matched = 0;
    for page in pages {
        for t in page.tuples() {
            if let Some(rows) = table.get(&t.get_int(key_col)) {
                matched += rows.len();
            }
        }
    }
    matched
}

/// Vectorized probe: gathered key column + integer-hashed lookup over
/// the arena chains.
pub fn join_probe_vectorized(
    table: &BuildTable,
    pages: &[Arc<Page>],
    key_col: usize,
    keys: &mut Vec<i64>,
) -> usize {
    let mut matched = 0;
    for page in pages {
        page.gather_i64(key_col, keys);
        for &key in keys.iter() {
            matched += table.matches(key).count();
        }
    }
    matched
}

// ------------------------------------------------------------- aggregate

/// Baseline Q1-style aggregation: per-tuple `key_of` materialization
/// into an ordered map plus recursive expression evaluation per tuple.
pub fn aggregate_baseline(pages: &[Arc<Page>], group_by: &[usize], expr: &ScalarExpr) -> usize {
    let mut groups: BTreeMap<Vec<KeyVal>, (i64, f64)> = BTreeMap::new();
    for page in pages {
        for t in page.tuples() {
            let key = key_of(&t, group_by);
            let acc = groups.entry(key).or_insert((0, 0.0));
            acc.0 += 1;
            acc.1 += expr.eval(&t).as_f64().expect("numeric");
        }
    }
    groups.len()
}

/// Vectorized Q1-style aggregation: packed `u64` group keys (the ≤ 8
/// byte fast path), integer-hashed slots, and a pre-evaluated input
/// column — the inner loop `AggregateTask` now runs.
pub fn aggregate_vectorized(
    pages: &[Arc<Page>],
    schema: &Arc<Schema>,
    group_by: &[usize],
    expr: &CompiledExpr,
    scratch: &mut ExprScratch,
    col: &mut Vec<f64>,
) -> usize {
    let fields: Vec<(usize, usize)> = group_by
        .iter()
        .map(|&c| (schema.offset(c), schema.fields()[c].dtype.width()))
        .collect();
    assert!(fields.iter().map(|&(_, w)| w).sum::<usize>() <= 8);
    let mut map: FxHashMap<u64, u32> = FxHashMap::default();
    let mut slots: Vec<(i64, f64)> = Vec::new();
    for page in pages {
        expr.eval_f64_into(page, scratch, col);
        for (r, raw) in page.raw_rows().enumerate() {
            let mut bytes = [0u8; 8];
            let mut at = 0;
            for &(off, w) in &fields {
                bytes[at..at + w].copy_from_slice(&raw[off..off + w]);
                at += w;
            }
            let idx = *map.entry(u64::from_le_bytes(bytes)).or_insert_with(|| {
                slots.push((0, 0.0));
                (slots.len() - 1) as u32
            });
            let acc = &mut slots[idx as usize];
            acc.0 += 1;
            acc.1 += col[r];
        }
    }
    slots.len()
}

/// The fixed aggregate kernel configuration used by both harnesses:
/// Q1's `(l_returnflag, l_linestatus)` grouping over the revenue
/// expression.
pub fn q1_group_by() -> Vec<usize> {
    vec![5, 6]
}

// ---------------------------------------------------------- end-to-end Q6

/// Baseline end-to-end Q6: tuple-at-a-time predicate + revenue sum, the
/// exact loop the filter/aggregate pipeline used to run per tuple.
pub fn q6_baseline(pages: &[Arc<Page>], pred: &Predicate, expr: &ScalarExpr) -> (usize, f64) {
    let (mut n, mut revenue) = (0usize, 0.0);
    for page in pages {
        for t in page.tuples() {
            if pred.eval(&t) {
                n += 1;
                revenue += expr.eval(&t).as_f64().expect("numeric");
            }
        }
    }
    (n, revenue)
}

/// Vectorized end-to-end Q6, shaped like the operator pipeline:
/// selection vector, survivors repacked into dense pages with bulk row
/// copies, compiled revenue program over the *filtered* pages.
pub fn q6_vectorized(
    pages: &[Arc<Page>],
    pred: &CompiledPredicate,
    expr: &CompiledExpr,
    scratch: &mut ExprScratch,
    sel: &mut Vec<u32>,
    col: &mut Vec<f64>,
) -> (usize, f64) {
    let (mut n, mut revenue) = (0usize, 0.0);
    let Some(first) = pages.first() else {
        return (n, revenue);
    };
    let mut builder = PageBuilder::new(first.schema().clone());
    let flush = |builder: &mut PageBuilder, scratch: &mut ExprScratch, col: &mut Vec<f64>| {
        if builder.is_empty() {
            return (0usize, 0.0);
        }
        let page = builder.finish_and_reset();
        expr.eval_f64_into(&page, scratch, col);
        (page.rows(), col.iter().sum::<f64>())
    };
    for page in pages {
        pred.select(page, scratch, sel);
        let mut taken = 0;
        while taken < sel.len() {
            taken += page.copy_rows_into(&sel[taken..], &mut builder);
            if builder.is_full() {
                let (dn, dr) = flush(&mut builder, scratch, col);
                n += dn;
                revenue += dr;
            }
        }
    }
    let (dn, dr) = flush(&mut builder, scratch, col);
    n += dn;
    revenue += dr;
    (n, revenue)
}

// ------------------------------------------------------------------ sort

/// Baseline sort intake + sort: per-tuple `key_of` materializing a
/// `Vec<KeyVal>` (one heap allocation per row) plus a boxed row copy —
/// the pre-vectorization `SortTask` loop.
pub fn sort_baseline(pages: &[Arc<Page>], keys: &[usize]) -> usize {
    let mut rows: Vec<(Vec<KeyVal>, Box<[u8]>)> = Vec::new();
    for page in pages {
        for t in page.tuples() {
            rows.push((key_of(&t, keys), t.raw().to_vec().into_boxed_slice()));
        }
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows.len()
}

/// Vectorized sort intake + sort: order-preserving packed `u64` keys
/// gathered page-at-a-time and a stable permutation sort over machine
/// words — the `SortTask` hot loop after vectorization (pages stay
/// whole; no per-row copies or allocations on intake).
pub fn sort_vectorized(
    pages: &[Arc<Page>],
    spec: &PackedKeySpec,
    scratch: &mut KeyScratch,
    keys: &mut Vec<u64>,
) -> usize {
    keys.clear();
    for page in pages {
        spec.extend_keys(page, scratch, keys);
    }
    let mut order: Vec<u32> = (0..keys.len() as u32).collect();
    order.sort_by_key(|&r| keys[r as usize]);
    order.len()
}

// ------------------------------------------------------------ merge join

/// Counts the join pairs of two sorted key streams (group sizes
/// multiply) — the merge loop shared by both merge-join kernels.
fn merge_count(l: &[i64], r: &[i64]) -> usize {
    let (mut i, mut j, mut pairs) = (0usize, 0usize, 0usize);
    while i < l.len() && j < r.len() {
        match l[i].cmp(&r[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let key = l[i];
                let (li, rj) = (i, j);
                while i < l.len() && l[i] == key {
                    i += 1;
                }
                while j < r.len() && r[j] == key {
                    j += 1;
                }
                pairs += (i - li) * (j - rj);
            }
        }
    }
    pairs
}

/// Baseline merge-join key extraction: per-tuple `get_int` plus a
/// per-row sortedness assert — the pre-vectorization `Side::pull` loop.
pub fn merge_join_baseline(
    left: &[Arc<Page>],
    right: &[Arc<Page>],
    left_key: usize,
    right_key: usize,
) -> usize {
    let extract = |pages: &[Arc<Page>], key: usize| {
        let mut keys: Vec<i64> = Vec::new();
        let mut last = i64::MIN;
        for page in pages {
            for t in page.tuples() {
                let k = t.get_int(key);
                assert!(k >= last, "merge input sorted");
                last = k;
                keys.push(k);
            }
        }
        keys
    };
    merge_count(&extract(left, left_key), &extract(right, right_key))
}

/// Vectorized merge-join key extraction: one [`Page::gather_i64`] per
/// page and a windowed sortedness sweep over the gathered column — the
/// `Side::pull` loop after vectorization.
pub fn merge_join_vectorized(
    left: &[Arc<Page>],
    right: &[Arc<Page>],
    left_key: usize,
    right_key: usize,
    buf: &mut Vec<i64>,
) -> usize {
    let mut extract = |pages: &[Arc<Page>], key: usize| {
        let mut keys: Vec<i64> = Vec::new();
        let mut last = i64::MIN;
        for page in pages {
            page.gather_i64(key, buf);
            assert!(buf.first().is_none_or(|&f| f >= last), "merge input sorted");
            assert!(buf.windows(2).all(|w| w[0] <= w[1]), "merge input sorted");
            last = buf.last().copied().unwrap_or(last);
            keys.extend_from_slice(buf);
        }
        keys
    };
    let l = extract(left, left_key);
    let r = extract(right, right_key);
    merge_count(&l, &r)
}

// ------------------------------------------------------------------- nlj

/// The NLJ bench configuration: outer pages, inner pages, predicate,
/// and the pair schema the predicate runs on.
pub type NljConfig = (Vec<Arc<Page>>, Vec<Arc<Page>>, Predicate, Arc<Schema>);

/// The NLJ bench plan: a band join `l_orderkey < o_orderkey` over a
/// small outer/inner page subset, with the pair schema it runs on.
pub fn nlj_config(d: &BenchData) -> NljConfig {
    let outer: Vec<Arc<Page>> = d.lineitem.iter().take(2).cloned().collect();
    let inner: Vec<Arc<Page>> = d.orders.iter().take(2).cloned().collect();
    let pred = Predicate::cmp(
        ScalarExpr::col(0),
        CmpOp::Lt,
        ScalarExpr::col(d.lineitem_schema.len()),
    );
    let pair = concat_schemas(&d.lineitem_schema, &d.orders_schema);
    (outer, inner, pred, pair)
}

/// Baseline NLJ probe: one single-row page materialized per
/// (outer, inner) pair, tree-walking `Predicate::eval` per candidate —
/// the pre-vectorization `NestedLoopJoinTask` inner loop.
pub fn nlj_baseline(
    outer: &[Arc<Page>],
    inner: &[Arc<Page>],
    pred: &Predicate,
    pair_schema: &Arc<Schema>,
) -> usize {
    let mut matched = 0;
    let mut probe = PageBuilder::new(pair_schema.clone());
    let mut row = Vec::new();
    for opage in outer {
        for ot in opage.tuples() {
            for ipage in inner {
                for it in ipage.tuples() {
                    row.clear();
                    row.extend_from_slice(ot.raw());
                    row.extend_from_slice(it.raw());
                    assert!(probe.push_raw(&row));
                    let candidate = probe.finish_and_reset();
                    if pred.eval(&candidate.tuple(0)) {
                        matched += 1;
                    }
                }
            }
        }
    }
    matched
}

/// Vectorized NLJ probe: candidate pairs batched into whole pages, the
/// compiled predicate evaluated page-at-a-time into a selection vector
/// — the `NestedLoopJoinTask` inner loop after vectorization.
pub fn nlj_vectorized(
    outer: &[Arc<Page>],
    inner: &[Arc<Page>],
    pred: &CompiledPredicate,
    pair_schema: &Arc<Schema>,
    scratch: &mut ExprScratch,
    sel: &mut Vec<u32>,
) -> usize {
    let mut matched = 0;
    let mut cand = PageBuilder::new(pair_schema.clone());
    for opage in outer {
        for ot in opage.tuples() {
            let oraw = ot.raw();
            for ipage in inner {
                for iraw in ipage.raw_rows() {
                    if !cand.push_raw_parts(oraw, iraw) {
                        let page = cand.finish_and_reset();
                        pred.select(&page, scratch, sel);
                        matched += sel.len();
                        assert!(cand.push_raw_parts(oraw, iraw));
                    }
                }
            }
        }
    }
    if !cand.is_empty() {
        let page = cand.finish_and_reset();
        pred.select(&page, scratch, sel);
        matched += sel.len();
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> BenchData {
        BenchData::generate(0.002)
    }

    #[test]
    fn kernel_pairs_agree() {
        let d = data();
        let mut scratch = ExprScratch::default();

        let pred = q6_predicate();
        let compiled = CompiledPredicate::compile(&pred, &d.lineitem_schema).expect("compiles");
        let mut sel = Vec::new();
        assert_eq!(
            filter_baseline(&d.lineitem, &pred),
            filter_vectorized(&d.lineitem, &compiled, &mut scratch, &mut sel)
        );

        let expr = revenue_expr();
        let cexpr = CompiledExpr::compile(&expr, &d.lineitem_schema).expect("compiles");
        let mut col = Vec::new();
        let base = expr_baseline(&d.lineitem, &expr);
        let vect = expr_vectorized(&d.lineitem, &cexpr, &mut scratch, &mut col);
        assert!((base - vect).abs() <= base.abs() * 1e-12);

        let base_table = join_build_baseline(&d.orders, 0);
        let vec_table = join_build_vectorized(&d.orders, 0, d.orders_schema.row_width());
        assert_eq!(
            base_table.values().map(Vec::len).sum::<usize>(),
            vec_table.rows()
        );
        let mut keys = Vec::new();
        assert_eq!(
            join_probe_baseline(&base_table, &d.lineitem, 0),
            join_probe_vectorized(&vec_table, &d.lineitem, 0, &mut keys)
        );

        assert_eq!(
            aggregate_baseline(&d.lineitem, &q1_group_by(), &expr),
            aggregate_vectorized(
                &d.lineitem,
                &d.lineitem_schema,
                &q1_group_by(),
                &cexpr,
                &mut scratch,
                &mut col
            )
        );

        let (bn, br) = q6_baseline(&d.lineitem, &pred, &expr);
        let (vn, vr) = q6_vectorized(
            &d.lineitem,
            &compiled,
            &cexpr,
            &mut scratch,
            &mut sel,
            &mut col,
        );
        assert_eq!(bn, vn);
        assert!((br - vr).abs() <= br.abs() * 1e-9, "{br} vs {vr}");
    }

    #[test]
    fn sort_kernels_agree_on_permutation() {
        let d = data();
        let keys = [7usize]; // l_shipdate: 4-byte packed Date key
                             // Baseline permutation: stable sort by decoded KeyVal tuples.
        let mut rows: Vec<(Vec<KeyVal>, u32)> = Vec::new();
        for page in &d.lineitem {
            for t in page.tuples() {
                rows.push((key_of(&t, &keys), rows.len() as u32));
            }
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let base_perm: Vec<u32> = rows.iter().map(|r| r.1).collect();
        // Vectorized permutation: stable sort by packed u64 keys.
        let spec = PackedKeySpec::try_new(&d.lineitem_schema, &keys).expect("≤ 8 bytes");
        let mut scratch = KeyScratch::default();
        let mut packed = Vec::new();
        for page in &d.lineitem {
            spec.extend_keys(page, &mut scratch, &mut packed);
        }
        let mut vec_perm: Vec<u32> = (0..packed.len() as u32).collect();
        vec_perm.sort_by_key(|&r| packed[r as usize]);
        assert_eq!(base_perm, vec_perm);
        // And the benched kernels agree on cardinality.
        let mut keybuf = Vec::new();
        assert_eq!(
            sort_baseline(&d.lineitem, &keys),
            sort_vectorized(&d.lineitem, &spec, &mut scratch, &mut keybuf)
        );
    }

    #[test]
    fn merge_join_kernels_agree() {
        let d = data();
        let mut buf = Vec::new();
        let base = merge_join_baseline(&d.orders, &d.lineitem, 0, 0);
        let vect = merge_join_vectorized(&d.orders, &d.lineitem, 0, 0, &mut buf);
        assert_eq!(base, vect);
        // Every lineitem row joins its (unique-keyed) order exactly once.
        assert_eq!(base, d.lineitem_rows());
    }

    #[test]
    fn nlj_kernels_agree() {
        let d = data();
        let (outer, inner, pred, pair) = nlj_config(&d);
        let cpred = CompiledPredicate::compile(&pred, &pair).expect("compiles");
        let mut scratch = ExprScratch::default();
        let mut sel = Vec::new();
        let base = nlj_baseline(&outer, &inner, &pred, &pair);
        let vect = nlj_vectorized(&outer, &inner, &cpred, &pair, &mut scratch, &mut sel);
        assert_eq!(base, vect);
        assert!(base > 0, "band join must match something");
    }

    #[test]
    fn fused_and_unfused_revenue_agree() {
        let d = data();
        let expr = revenue_expr();
        let fused = CompiledExpr::compile(&expr, &d.lineitem_schema).expect("compiles");
        let unfused = CompiledExpr::compile_unfused(&expr, &d.lineitem_schema).expect("compiles");
        let mut scratch = ExprScratch::default();
        let mut col = Vec::new();
        let a = expr_vectorized(&d.lineitem, &fused, &mut scratch, &mut col);
        let b = expr_vectorized(&d.lineitem, &unfused, &mut scratch, &mut col);
        assert_eq!(a.to_bits(), b.to_bits(), "fusion must be bit-exact");
    }
}
