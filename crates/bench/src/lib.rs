//! # cordoba-bench — experiment harness
//!
//! One module per concern:
//!
//! * [`experiments`] — measurement routines behind every figure of the
//!   paper (shared/unshared throughput sweeps, model validation, policy
//!   comparison) over the simulated CMP.
//! * [`output`] — CSV emission and quick ASCII charts so each figure
//!   binary prints the same series the paper plots.
//!
//! Binaries (one per table/figure — see DESIGN.md's experiment index):
//! `fig1_q6_sharing`, `fig2_speedups`, `fig4_sensitivity`,
//! `fig5_validation`, `fig6_policies`, `sec44_params`, `ablations`, and
//! `all_figures` (runs everything, writes `results/*.csv`).

pub mod experiments;
pub mod output;
pub mod par_kernels;
pub mod service_kernels;
pub mod spill_kernels;
pub mod subsume_kernels;
pub mod vec_kernels;
