//! Subsumption-sharing scenarios for the `bench_ops` harness: measured
//! `Z(m, n)` of sharing a *wide* selection fragment among distinct but
//! nested query windows (no two queries byte-identical — the historic
//! equality matcher would share nothing here), plus the fragment-cache
//! replay path and a fig6-style policy win/loss comparison.
//!
//! Everything in this module is simulator virtual time: deterministic
//! for a fixed seed and host-independent, so committed numbers can be
//! gated tightly.

use cordoba_core::sharing::{GroupMember, SharingEvaluator};
use cordoba_engine::profiling::profile_query;
use cordoba_engine::{
    run_once, run_open_loop_collecting, EngineConfig, Policy, QueryModelInfo, QuerySpec,
};
use cordoba_exec::subsume::{coverage_estimate, MIN_COVERAGE};
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::Catalog;
use cordoba_workload::{family_specs, CostProfile, FamilyConfig};
use std::collections::HashMap;

/// Mirrors the policy's residual-pricing constant (see
/// `cordoba_engine::policy`): the advisor validation must price
/// fragments exactly the way the dispatcher's admission does.
const RESIDUAL_COST_RATIO: f64 = 0.1;

/// The fixed catalog for every subsume scenario. The scale factor does
/// NOT shrink under `--quick`: virtual-time results are deterministic,
/// so there is nothing to save by subsampling, and the committed
/// numbers stay comparable across runs.
pub fn catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.002,
        seed: 11,
        ..TpchConfig::default()
    })
}

fn engine_cfg(contexts: usize, policy: Policy, cache: usize) -> EngineConfig {
    EngineConfig {
        contexts,
        policy,
        fragment_cache: cache,
        ..EngineConfig::default()
    }
}

/// One measured subsumption scenario.
#[derive(Debug, Clone)]
pub struct SubsumePoint {
    /// Scenario name (gate key in `BENCH_ops.json`).
    pub name: &'static str,
    /// Queries in the workload.
    pub queries: usize,
    /// Simulated hardware contexts.
    pub contexts: usize,
    /// Virtual time (or response) of the unshared baseline.
    pub unshared_vt: f64,
    /// Virtual time (or response) of the shared/subsumed run.
    pub shared_vt: f64,
    /// The partial-overlap model's predicted `Z` for the scenario's
    /// group (NaN when the scenario has no single-group prediction).
    pub predicted_z: f64,
    /// Fragment-cache hits observed in the shared run.
    pub hits: u64,
    /// Fragment-cache misses observed in the shared run.
    pub misses: u64,
    /// Fragment-cache evictions observed in the shared run.
    pub evictions: u64,
    /// Members admitted via subsumption (pivot differed from group's).
    pub subsume_joins: u64,
    /// What the scenario exercises.
    pub note: &'static str,
}

impl SubsumePoint {
    /// Measured speedup `Z = unshared / shared` (virtual time ratio).
    pub fn measured_z(&self) -> f64 {
        self.unshared_vt / self.shared_vt
    }

    /// Whether the advisor's win/loss call matches the measurement
    /// (`None` when the scenario carries no prediction).
    pub fn advisor_agrees(&self) -> Option<bool> {
        if self.predicted_z.is_nan() {
            None
        } else {
            Some((self.predicted_z >= 1.0) == (self.measured_z() >= 1.0))
        }
    }
}

/// Predicts `Z` for one family chain sharing its widest member's
/// fragment, using per-member profiled models and the same coverage /
/// residual pricing the dispatcher's `admit_overlap` applies.
/// `effective_contexts` is the group's fair share of the machine.
fn predicted_chain_z(catalog: &Catalog, chain: &[&QuerySpec], effective_contexts: f64) -> f64 {
    let cfg = EngineConfig::default();
    let models: Vec<QueryModelInfo> = chain
        .iter()
        .map(|spec| {
            profile_query(catalog, spec, &cfg)
                .unwrap_or_else(|e| panic!("profiling {} failed: {e}", spec.name))
                .0
        })
        .collect();
    let wide_pivot = chain[0].pivot.as_ref().expect("family specs have pivots");
    let wide_model = &models[0];
    let below: Vec<f64> = wide_model
        .plan
        .below(wide_model.pivot)
        .expect("pivot in plan")
        .into_iter()
        .map(|id| wide_model.plan.op(id).p())
        .collect();
    let pivot_work = wide_model.plan.op(wide_model.pivot).w();
    let members: Vec<GroupMember> = chain
        .iter()
        .zip(&models)
        .map(|(spec, model)| {
            let narrow = spec.pivot.as_ref().expect("family specs have pivots");
            let c = coverage_estimate(wide_pivot, narrow).clamp(MIN_COVERAGE, 1.0);
            let s_wide = model.plan.op(model.pivot).s_per_consumer() / c;
            let residual = if c < 1.0 - 1e-12 {
                RESIDUAL_COST_RATIO * s_wide
            } else {
                0.0
            };
            let above = model
                .plan
                .above(model.pivot)
                .expect("pivot in plan")
                .into_iter()
                .map(|id| model.plan.op(id).p())
                .collect();
            GroupMember::new(s_wide, above).with_partial_overlap(c, residual)
        })
        .collect();
    SharingEvaluator::from_parts(below, pivot_work, members)
        .expect("profiled parameters are valid")
        .speedup(effective_contexts.max(1.0))
}

/// Runs a family workload shared (always-share, cache on) and unshared
/// (never-share), asserting result equality, and returns the measured
/// point with the advisor's prediction for one family's group.
pub fn group_scenario(
    catalog: &Catalog,
    name: &'static str,
    family_cfg: &FamilyConfig,
    contexts: usize,
    note: &'static str,
) -> SubsumePoint {
    let specs = family_specs(&CostProfile::paper(), family_cfg);
    for (i, a) in specs.iter().enumerate() {
        for b in &specs[i + 1..] {
            assert_ne!(a, b, "family workload contains byte-identical queries");
        }
    }
    let shared = run_once(
        catalog,
        &specs,
        &engine_cfg(contexts, Policy::AlwaysShare, 8),
    );
    let unshared = run_once(
        catalog,
        &specs,
        &engine_cfg(contexts, Policy::NeverShare, 0),
    );
    assert!(shared.failures.is_empty(), "{:?}", shared.failures);
    assert!(unshared.failures.is_empty(), "{:?}", unshared.failures);
    assert_eq!(
        shared.results, unshared.results,
        "{name}: shared results diverged from unshared"
    );
    assert!(
        shared.group_sizes.iter().any(|&g| g > 1),
        "{name}: no group formed over the nested family: {:?}",
        shared.group_sizes
    );
    // The advisor prediction prices one family chain (members j share
    // the widest window j=0) with the group's fair share of contexts.
    let chain: Vec<&QuerySpec> = (0..family_cfg.per_family)
        .map(|j| &specs[j * family_cfg.families])
        .collect();
    let n_eff = contexts as f64 * family_cfg.per_family as f64 / specs.len() as f64;
    let predicted_z = predicted_chain_z(catalog, &chain, n_eff);
    SubsumePoint {
        name,
        queries: specs.len(),
        contexts,
        unshared_vt: unshared.makespan as f64,
        shared_vt: shared.makespan as f64,
        predicted_z,
        hits: shared.sharing.fingerprint_hits,
        misses: shared.sharing.fingerprint_misses,
        evictions: shared.sharing.fingerprint_evictions,
        subsume_joins: shared.sharing.subsume_joins,
        note,
    }
}

/// Open-loop two-wave scenario: the widest family member completes,
/// then the narrower members arrive and are served from the fragment
/// cache. Baseline = the cold wide query's response; shared = the mean
/// replayed response. Asserts the cache actually hit.
pub fn cache_replay_scenario(catalog: &Catalog) -> SubsumePoint {
    let specs = family_specs(
        &CostProfile::paper(),
        &FamilyConfig {
            seed: 42,
            families: 1,
            per_family: 3,
        },
    );
    let schedule = vec![
        (0, specs[0].clone()),
        (40_000_000, specs[1].clone()),
        (40_000_000, specs[2].clone()),
    ];
    let cfg = engine_cfg(1, Policy::AlwaysShare, 8);
    let (report, _results) = run_open_loop_collecting(catalog, schedule, &cfg, u64::MAX / 4);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.completed, 3, "{report:?}");
    assert!(
        report.sharing.fingerprint_hits >= 1,
        "late nested arrivals must hit the cache: {:?}",
        report.sharing
    );
    let cold = report.response_times[0] as f64;
    let warm = report.response_times[1..]
        .iter()
        .map(|&t| t as f64)
        .sum::<f64>()
        / (report.response_times.len() - 1) as f64;
    SubsumePoint {
        name: "subsume_cache_replay_n1",
        queries: specs.len(),
        contexts: 1,
        unshared_vt: cold,
        shared_vt: warm,
        predicted_z: f64::NAN,
        hits: report.sharing.fingerprint_hits,
        misses: report.sharing.fingerprint_misses,
        evictions: report.sharing.fingerprint_evictions,
        subsume_joins: report.sharing.subsume_joins,
        note: "cold wide fragment vs cached replay for late nested arrivals (response time ratio)",
    }
}

/// One fig6-style policy point on the family workload: batch makespan
/// (all queries arrive at once) under never / always / model-guided
/// sharing. Coincident arrivals are the regime where the admission
/// decision actually bites — in a staggered closed loop nothing ever
/// batches and every policy degenerates to never-share.
#[derive(Debug, Clone)]
pub struct PolicyPoint {
    /// Contexts the machine has.
    pub contexts: usize,
    /// Never-share makespan (virtual time).
    pub never: f64,
    /// Always-share makespan (virtual time).
    pub always: f64,
    /// Model-guided makespan (virtual time).
    pub model: f64,
    /// Group sizes the model-guided policy formed.
    pub model_groups: Vec<usize>,
}

impl PolicyPoint {
    /// Always-share speedup over never-share (`< 1` is the loss regime).
    pub fn always_z(&self) -> f64 {
        self.never / self.always
    }

    /// Model-guided speedup over never-share.
    pub fn model_z(&self) -> f64 {
        self.never / self.model
    }
}

/// A cost profile whose selection fragment pays a *large per-consumer
/// delivery* (`s`) relative to the shareable work — e.g. a fragment
/// materializing wide derived tuples to every consumer. This is the
/// paper's loss regime: at high parallelism the serialized delivery at
/// the shared pivot outweighs the saved common work, always-share falls
/// behind never-share, and the advisor must decline (or downsize) the
/// group.
pub fn delivery_heavy_costs() -> CostProfile {
    CostProfile {
        filter: cordoba_exec::OpCost::new(0.8, 100.0),
        ..CostProfile::paper()
    }
}

/// Measures the three policies on the family workload (the win/loss
/// regimes of Figure 6, on subsumption-shared fragments instead of
/// identical plans). Model-guided uses per-shape profiled models keyed
/// by query name, exactly as the dispatcher consumes them. The fragment
/// cache is disabled so the measurement isolates the admission
/// decision; all three runs are asserted result-identical.
pub fn policy_scenario(
    catalog: &Catalog,
    costs: &CostProfile,
    family_cfg: &FamilyConfig,
    contexts: usize,
) -> PolicyPoint {
    let specs = family_specs(costs, family_cfg);
    let mut models: HashMap<String, QueryModelInfo> = HashMap::new();
    let profile_cfg = EngineConfig::default();
    for spec in &specs {
        if !models.contains_key(&spec.name) {
            let (info, _) = profile_query(catalog, spec, &profile_cfg)
                .unwrap_or_else(|e| panic!("profiling {} failed: {e}", spec.name));
            models.insert(spec.name.clone(), info);
        }
    }
    let run = |policy: Policy| run_once(catalog, &specs, &engine_cfg(contexts, policy, 0));
    let never = run(Policy::NeverShare);
    let always = run(Policy::AlwaysShare);
    let model = run(Policy::model_guided(models));
    for r in [&never, &always, &model] {
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }
    assert_eq!(never.results, always.results, "always-share diverged");
    assert_eq!(never.results, model.results, "model-guided diverged");
    PolicyPoint {
        contexts,
        never: never.makespan as f64,
        always: always.makespan as f64,
        model: model.makespan as f64,
        model_groups: model.group_sizes.clone(),
    }
}
